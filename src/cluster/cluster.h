/**
 * @file
 * Fleet-scale serving layer: N simulated machines behind one dispatcher.
 *
 * The Litmus paper prices invocations on a single co-located server;
 * production platforms serve the same traffic from fleets. A Cluster
 * owns one sim::Engine per machine, pulls an open-loop arrival stream
 * lazily (the built-in Poisson source or any TrafficSource) at fleet
 * rates — memory stays O(stream lookahead), so day-long traces over
 * millions of invocations never materialize — routes every arrival
 * through a pluggable Dispatcher, and aggregates per-machine billing
 * into one fleet revenue/discount report.
 *
 * Execution advances between dispatch barriers on the epoch grid:
 * busy engines run on a worker pool (one job per machine, barrier at
 * the end — engines are independent between dispatch decisions, so
 * wall-clock scales with cores), completions are folded back into
 * warm pools and ledgers in (barrier, machine) order, and then the
 * cluster (single-threaded) routes the arrivals that came due, using
 * machine snapshots taken at the barrier — an invocation starts at
 * the first epoch boundary at or after its arrival, never early. The
 * default `event` backend only takes the barriers a typed event queue
 * says matter (idle machines are never stepped at all); the `epoch`
 * backend marches every grid barrier and serves as the differential
 * oracle. All cross-thread state is barrier-local, so a fixed seed
 * gives bit-identical fleet totals at any thread count under either
 * backend.
 *
 * Warm containers: every completed invocation leaves one idle warm
 * container behind (keep-alive bounded). A dispatch that finds one
 * skips the language startup — the dominant cold-start cost — which
 * is what the warmth-aware policy exploits.
 */

#ifndef LITMUS_CLUSTER_CLUSTER_H
#define LITMUS_CLUSTER_CLUSTER_H

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "cluster/dispatcher.h"
#include "cluster/fault_plan.h"
#include "cluster/traffic_source.h"
#include "core/billing.h"
#include "core/discount_model.h"
#include "sim/engine.h"
#include "workload/suite.h"

namespace litmus::cluster
{

/**
 * Cluster serving-loop backend.
 *
 * `Event` (the default) drives the fleet off a deterministic typed
 * event queue (cluster/event_queue.h): wholly idle machines cost
 * nothing between events and busy machines fast-forward to the next
 * event barrier. `Epoch` is the original fixed-epoch march, kept as
 * the differential-testing oracle — fleet reports are bit-identical
 * between the two at any thread count, including under chaos.
 */
enum class SchedulerBackend : std::uint8_t
{
    Epoch,
    Event,
};

/** Lower-case backend name ("epoch" / "event"). */
const char *schedulerName(SchedulerBackend backend);

/** Parse a backend name; fatal() on anything else. */
SchedulerBackend schedulerByName(const std::string &name);

/** One homogeneous slice of a (possibly mixed) fleet. */
struct MachineGroup
{
    /** Machine type: a MachineCatalog name. */
    std::string machine;

    /** Machines of this type. */
    unsigned count = 1;
};

/** Fleet configuration. */
struct ClusterConfig
{
    /**
     * The fleet, as machine-type groups resolved through
     * MachineCatalog — {"cascade-5218", 8}, {"icelake-4314", 8} is
     * the paper's two testbeds serving side by side. Machines are
     * indexed group by group in spec order.
     */
    std::vector<MachineGroup> fleet = {{"cascade-5218", 4}};

    /** Routing policy. */
    DispatchPolicy policy = DispatchPolicy::RoundRobin;

    /** @name Open-loop fleet traffic @{ */
    /**
     * Pluggable arrival process (scenario models all implement the
     * TrafficSource interface). Borrowed; must outlive the cluster.
     * Null keeps the built-in open-loop Poisson source driven by
     * arrivalsPerSecond/invocations below — which a `poisson`
     * scenario model reproduces bit-exactly, so the two paths are
     * interchangeable at the same seed.
     */
    const TrafficSource *traffic = nullptr;

    /** Fleet-wide mean arrival rate (invocations per second). Used
     *  by the built-in Poisson source (traffic == nullptr). */
    double arrivalsPerSecond = 2000.0;

    /** Total arrivals to generate (built-in Poisson source). */
    std::uint64_t invocations = 10000;

    /** Sampling pool (the whole Table 1 suite by default; an
     *  explicitly empty pool is a validate() error). */
    std::vector<const workload::FunctionSpec *> functionPool =
        workload::allFunctions();

    /** Seed for the arrival trace and per-invocation jitter. */
    std::uint64_t seed = 1;
    /** @} */

    /** @name Serving model @{ */
    /**
     * Serving-loop backend; `exactQuantum` forces `Epoch` (the exact
     * path exists to time the unbatched baseline).
     */
    SchedulerBackend scheduler = SchedulerBackend::Event;

    /** Dispatch epoch: barrier period between routing decisions. */
    Seconds epoch = 1e-3;

    /** Warm-container keep-alive after an invocation completes. */
    Seconds keepAlive = 10.0;

    /** Attach Litmus probes to cold invocations. */
    bool probes = false;

    /**
     * Worker threads driving the engines (0 = one per machine, capped
     * by the host's hardware concurrency; 1 = fully serial). Totals
     * are identical at every setting.
     */
    unsigned threads = 0;

    /**
     * A/B escape hatch (--exact-quantum): disable the engines'
     * steady-state fast-forward and the cluster's batched idle-epoch
     * stepping. Fleet totals are bit-identical either way; exact mode
     * exists for differential validation and baseline timing.
     */
    bool exactQuantum = false;

    /**
     * Simulated seconds the fleet may keep running past the last
     * arrival; fatal() if it fails to drain by then. Relative to the
     * trace end, so long traces (low rates, millions of invocations)
     * never trip it while arrivals are still due.
     */
    Seconds drainCap = 600.0;

    /**
     * A/B escape hatch (--arrivals=upfront): materialize the whole
     * arrival trace before serving (the seed-era behavior) instead of
     * pulling the stream lazily. Fleet totals and ledgers are
     * bit-identical either way — that differential is a tested gate —
     * but upfront pays O(total arrivals) resident memory; it exists
     * for validation and the fig26 memory comparison.
     */
    bool upfrontArrivals = false;
    /** @} */

    /** @name Fleet billing @{ */
    /**
     * Optional calibrated discount models, one per machine type
     * (keyed by catalog name): cold invocations carrying a completed
     * Litmus probe are charged the Litmus price; warm and unprobed
     * invocations — and machines of a type with no model — pay the
     * commercial price. Each model's profile must match its machine
     * type (fatal() otherwise). Borrowed; must outlive the cluster.
     */
    std::map<std::string, const pricing::DiscountModel *>
        discountModels;

    /** Method 1 sharing factor for Litmus quotes. */
    double sharingFactor = 1.0;

    pricing::BillingConfig billing;
    /** @} */

    /** @name Fault injection @{ */
    /**
     * Declarative fault campaign (crashes, slowdown windows,
     * dispatcher blindness) compiled into a deterministic schedule at
     * run(); the default spec disables every fault source and the
     * fault machinery adds nothing to the serving loop. Faults are
     * applied at epoch barriers — the same granularity as dispatch —
     * so fleet totals stay bit-identical at any thread count.
     */
    FaultSpec faults;
    /** @} */

    /** Total machines across all groups. */
    unsigned totalMachines() const;

    void validate() const;
};

/** Per-machine slice of the fleet report. */
struct MachineReport
{
    unsigned index = 0;

    /** Machine type (catalog name). */
    std::string type;

    std::uint64_t dispatched = 0;
    std::uint64_t coldStarts = 0;
    std::uint64_t warmStarts = 0;
    std::uint64_t completions = 0;

    /** Billed on-CPU seconds (sum over the machine's ledger). */
    Seconds billedCpuSeconds = 0;

    /** Charges in USD. */
    double commercialUsd = 0;
    double litmusUsd = 0;

    /** Mean dispatch-to-completion latency (seconds). */
    double meanLatency = 0;

    /** Quanta the machine covered on the canonical fleet grid:
     *  executed plus idle-elided (event core). Identical across
     *  backends and thread counts. */
    double quanta = 0;

    /** @name Failure accounting (fault injection) @{ */
    /** Crashes this machine suffered. */
    std::uint64_t crashes = 0;

    /** In-flight invocations killed by those crashes. */
    std::uint64_t killedInvocations = 0;

    /** On-CPU seconds destroyed by crashes (work lost, regardless of
     *  who paid for it). */
    Seconds lostCpuSeconds = 0;

    /** Lost seconds the provider absorbed (never billed); 0 under
     *  tenant-pays billing. */
    Seconds absorbedCpuSeconds = 0;

    /** Commercial value of the absorbed work (USD). */
    double absorbedUsd = 0;
    /** @} */
};

/** Per-machine-type slice of the fleet report (revenue/discount
 *  breakdown for heterogeneous fleets). */
struct TypeReport
{
    /** Machine type (catalog name). */
    std::string type;

    /** Machines of this type in the fleet. */
    unsigned machines = 0;

    std::uint64_t dispatched = 0;
    std::uint64_t coldStarts = 0;
    std::uint64_t warmStarts = 0;
    std::uint64_t completions = 0;

    Seconds billedCpuSeconds = 0;
    double commercialUsd = 0;
    double litmusUsd = 0;

    /** @name Failure accounting (fault injection) @{ */
    std::uint64_t crashes = 0;
    std::uint64_t killedInvocations = 0;
    Seconds lostCpuSeconds = 0;
    Seconds absorbedCpuSeconds = 0;
    double absorbedUsd = 0;
    /** @} */

    /** Type discount (1 - litmus/commercial revenue). */
    double discount() const
    {
        return commercialUsd > 0 ? 1.0 - litmusUsd / commercialUsd : 0.0;
    }
};

/**
 * Scheduler observability: what the serving loop actually did. Both
 * backends fill the shared-path counters (arrival/retry/fault/
 * keep-alive events flow through the same dispatch/harvest code);
 * idle-skip and barrier-elision are where the event core's win shows.
 * Never part of the bit-identity contract — the two backends take
 * different barriers by design — so identicalTotals() ignores this.
 */
struct SchedulerCounters
{
    /** Backend that produced the report ("epoch" / "event"). */
    std::string scheduler;

    /** @name Events processed, by class @{ */
    std::uint64_t eventsFault = 0;     ///< fault transitions applied
    std::uint64_t eventsArrival = 0;   ///< trace arrivals dispatched
    std::uint64_t eventsRetry = 0;     ///< retries re-dispatched
    std::uint64_t eventsKeepAlive = 0; ///< keep-alive expiry sweeps
    std::uint64_t eventsProgress = 0;  ///< barriers with live work
    /** @} */

    /** Idle quanta elided across all engines (never stepped). */
    std::uint64_t idleQuantaSkipped = 0;

    /** Dispatch/harvest barriers the loop actually took. */
    std::uint64_t barriers = 0;

    /** Epoch-grid barriers skipped (grid barriers minus taken). */
    std::uint64_t barriersElided = 0;
};

/**
 * Arrival-flow observability: what the traffic stream produced and
 * what it cost to hold. `bufferedMax` is the stream's peak resident
 * arrival count — 1 for native streaming models, the whole trace
 * under `upfrontArrivals` — which is the number fig26's memory claim
 * rests on. Like SchedulerCounters, never part of the bit-identity
 * contract (streaming and upfront buffer differently by design), so
 * identicalTotals() ignores this.
 */
struct ArrivalCounters
{
    /** Producing traffic model ("poisson", "trace", "azure", ...;
     *  "inline-poisson" for the built-in source). */
    std::string model;

    /** "streaming" or "upfront" (ClusterConfig::upfrontArrivals). */
    std::string mode;

    /** Arrivals the model produced (includes a peeked head). */
    std::uint64_t generated = 0;

    /** Arrivals the serving loop consumed. */
    std::uint64_t pulled = 0;

    /** Peak arrivals resident in the stream at once. */
    std::uint64_t bufferedMax = 0;
};

/** Fleet-wide aggregation. */
struct FleetReport
{
    std::vector<MachineReport> machines;

    /** Serving-loop observability (excluded from identicalTotals). */
    SchedulerCounters sched;

    /** Arrival-flow observability (excluded from identicalTotals). */
    ArrivalCounters arrivalFlow;

    /** Per-machine-type breakdown, in fleet-spec order. Sums match
     *  the per-machine reports exactly (same accumulation order). */
    std::vector<TypeReport> types;

    std::uint64_t arrivals = 0;
    std::uint64_t dispatched = 0;
    std::uint64_t rejectedMemory = 0;
    std::uint64_t completions = 0;
    std::uint64_t coldStarts = 0;
    std::uint64_t warmStarts = 0;

    /**
     * Fleet billed on-CPU seconds, accumulated independently of the
     * per-machine ledgers (conservation: equals the sum over machines
     * up to floating-point association).
     */
    Seconds billedCpuSeconds = 0;

    /** Fleet charges in USD. */
    double commercialUsd = 0;
    double litmusUsd = 0;

    /** Mean dispatch-to-completion latency across the fleet. */
    double meanLatency = 0;

    /** Simulated time until the fleet drained. */
    Seconds makespan = 0;

    /** @name Failure accounting (fault injection; all zero without a
     *  fault campaign) @{ */
    /** Machine crashes applied across the fleet. */
    std::uint64_t crashes = 0;

    /** In-flight invocations killed by crashes. */
    std::uint64_t killedInvocations = 0;

    /** Killed invocations re-dispatched by the retry policy. */
    std::uint64_t retries = 0;

    /** Killed invocations the retry policy gave up on. */
    std::uint64_t abandoned = 0;

    /**
     * On-CPU seconds destroyed by crashes. Accumulated independently
     * of the per-machine slices, like billedCpuSeconds.
     */
    Seconds lostCpuSeconds = 0;

    /** Lost seconds the provider absorbed instead of billing. The
     *  conservation invariant through failures: every cycle any
     *  engine retired for an invocation is either billed or absorbed
     *  — billedCpuSeconds + absorbedCpuSeconds covers kept and
     *  destroyed work alike, under either fault-billing mode. */
    Seconds absorbedCpuSeconds = 0;

    /** Commercial value of the absorbed work (USD). */
    double absorbedUsd = 0;
    /** @} */

    /** Aggregate fleet discount (1 - litmus/commercial revenue). */
    double discount() const
    {
        return commercialUsd > 0 ? 1.0 - litmusUsd / commercialUsd : 0.0;
    }

    /** Served throughput in invocations per simulated second. */
    double throughput() const
    {
        return makespan > 0 ? static_cast<double>(completions) / makespan
                            : 0.0;
    }

    /** Cold starts as a fraction of dispatches. */
    double coldStartRate() const
    {
        return dispatched > 0
                   ? static_cast<double>(coldStarts) / dispatched
                   : 0.0;
    }

    /** Sum of per-machine billed seconds (conservation checks). */
    Seconds sumMachineBilledSeconds() const;

    /** Sum of per-machine lost seconds (conservation checks). */
    Seconds sumMachineLostSeconds() const;

    /** Sum of per-machine absorbed seconds (conservation checks). */
    Seconds sumMachineAbsorbedSeconds() const;
};

/**
 * Bit-exact equality of two reports' fleet totals (counts, billed
 * seconds, revenues, makespan) — the determinism-check comparison
 * used by benches and tests. Per-machine/type breakdowns follow from
 * the totals and are not re-compared.
 */
bool identicalTotals(const FleetReport &a, const FleetReport &b);

/**
 * The fleet: engines, dispatcher, traffic, billing.
 *
 * Single-shot: construct, run(), read the report.
 */
class Cluster
{
  public:
    explicit Cluster(ClusterConfig cfg);
    ~Cluster();

    Cluster(const Cluster &) = delete;
    Cluster &operator=(const Cluster &) = delete;

    /**
     * Generate the arrival trace, serve it to completion (drain), and
     * return the fleet report. May be called once.
     */
    const FleetReport &run();

    /** The report (valid after run()). */
    const FleetReport &report() const;

    /** One machine's engine (inspection; valid after run()). */
    const sim::Engine &engine(unsigned machine) const;

    /** One machine's billing ledger (valid after run()). */
    const pricing::BillingLedger &ledger(unsigned machine) const;

    const ClusterConfig &config() const { return cfg_; }

  private:
    struct Machine;

    /** Per-run serving state shared by both backends (cluster.cc). */
    struct Serve;

    /**
     * Serve the trace on the fixed-epoch march (the differential
     * oracle); returns the final fleet clock (makespan).
     */
    Seconds serveEpoch(Serve &s);

    /** Serve the trace on the event queue; returns the makespan. */
    Seconds serveEvent(Serve &s);

    /** True while any engine owns a live task. */
    bool anyLive() const;

    /**
     * Advance the canonical fleet clock by whole epochs, one fadd per
     * quantum — the exact accumulation sequence every engine's clock
     * performs, so the two stay bit-identical at equal tick counts.
     */
    void advanceFleetEpochs(std::uint64_t epochs);

    /**
     * Walk the fleet clock forward until it reaches the first epoch
     * barrier at or past @p target (at least one epoch; dueness on
     * the exact accumulated grid, no analytic division). Returns the
     * epochs advanced.
     */
    std::uint64_t advanceClockToCover(Seconds target);

    /** Dispatch every due arrival and retry at the barrier @p now. */
    void dispatchDue(Serve &s, Seconds now);

    /** Dispatcher view of every machine, taken at an epoch barrier. */
    std::vector<MachineSnapshot> snapshots() const;

    /**
     * Route and launch one arrival; updates @p snapshots in place so
     * one snapshot set serves a whole dispatch batch.
     */
    void dispatch(const Invocation &inv,
                  std::vector<MachineSnapshot> &snapshots);

    /**
     * Fold buffered completions into warm pools and ledgers, then
     * sweep lapsed keep-alives. Completions are folded grouped by
     * their covering epoch barrier (ascending), machines in index
     * order within a barrier — exactly the order the epoch march
     * produces one barrier at a time — so the floating-point
     * accumulation order of fleet totals is backend-independent.
     */
    void harvest(Seconds now);

    /** Apply every fault transition due at or before @p now. */
    void applyFaults(Seconds now);

    /** Kill a machine: destroy in-flight work, account the loss,
     *  queue retries, drop warm containers. */
    void crashMachine(Machine &m, Seconds now);

    /** Queue a killed invocation for re-dispatch per the retry
     *  policy (or count it abandoned). */
    void scheduleRetry(const workload::FunctionSpec *spec,
                       std::uint64_t seq, unsigned attempt,
                       Seconds now);

    ClusterConfig cfg_;
    std::unique_ptr<Dispatcher> dispatcher_;
    std::vector<std::unique_ptr<Machine>> machines_;
    Rng rng_;
    FleetReport report_;
    double latencySum_ = 0;
    bool ran_ = false;

    /** @name Canonical fleet clock @{ */
    /**
     * Quanta since t=0 on the fleet grid. Busy engines step every
     * one; idle engines catch up via Engine::skipIdleQuanta at their
     * next dispatch (so their clocks land on fleetClock_ exactly).
     */
    std::uint64_t fleetTick_ = 0;

    /** Simulated time at fleetTick_, accumulated one quantum-fadd per
     *  tick — bit-identical to every synced engine's now(). */
    Seconds fleetClock_ = 0;

    /** Epoch length in whole quanta (set by run()). */
    std::uint64_t epochQuanta_ = 0;
    /** @} */

    /** @name Fault state (empty/idle without a fault campaign) @{ */
    /** The compiled schedule; applied through faultCursor_. */
    FaultPlan faultPlan_;
    std::size_t faultCursor_ = 0;

    /** Killed invocations awaiting re-dispatch, sorted by
     *  (due time, seq); Invocation::arrival holds the due time. */
    std::vector<Invocation> retryQueue_;

    /** Latest retry due time ever queued (drain-cap base). */
    Seconds latestRetry_ = 0;
    /** @} */
};

} // namespace litmus::cluster

#endif // LITMUS_CLUSTER_CLUSTER_H
