#include "cluster/cluster.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <thread>
#include <unordered_map>

#include "cluster/epoch_pool.h"
#include "cluster/event_queue.h"
#include "common/logging.h"
#include "core/litmus_probe.h"
#include "sim/machine_catalog.h"
#include "workload/suite.h"

namespace litmus::cluster
{

const char *
schedulerName(SchedulerBackend backend)
{
    switch (backend) {
    case SchedulerBackend::Epoch:
        return "epoch";
    case SchedulerBackend::Event:
        return "event";
    }
    fatal("schedulerName: unknown backend ",
          static_cast<unsigned>(backend));
}

SchedulerBackend
schedulerByName(const std::string &name)
{
    if (name == "epoch")
        return SchedulerBackend::Epoch;
    if (name == "event")
        return SchedulerBackend::Event;
    fatal("unknown scheduler backend '", name,
          "' — expected 'event' or 'epoch'");
}

unsigned
ClusterConfig::totalMachines() const
{
    unsigned total = 0;
    for (const MachineGroup &group : fleet)
        total += group.count;
    return total;
}

void
ClusterConfig::validate() const
{
    if (fleet.empty())
        fatal("ClusterConfig: fleet spec is empty — need at least "
              "one machine group, e.g. {\"cascade-5218\", 4}");
    for (const MachineGroup &group : fleet) {
        if (group.count == 0)
            fatal("ClusterConfig: machine group '", group.machine,
                  "' has zero machines — drop the group or give it a "
                  "positive count");
        // Resolving an unknown name fatal()s with the catalog listing.
        (void)sim::MachineCatalog::get(group.machine);
    }
    // The dispatch epoch is a whole number of quanta and the fleet
    // clock lives on one shared grid, so every machine type in a
    // fleet must agree on the engine quantum (satisfied trivially by
    // homogeneous fleets and the built-in presets).
    const Seconds quantum =
        sim::MachineCatalog::get(fleet.front().machine).quantum;
    for (const MachineGroup &group : fleet) {
        const sim::MachineConfig mc =
            sim::MachineCatalog::get(group.machine);
        if (mc.quantum != quantum) {
            fatal("ClusterConfig: machine types '",
                  fleet.front().machine, "' (quantum ", quantum,
                  " s) and '", group.machine, "' (quantum ",
                  mc.quantum,
                  " s) disagree on the simulation quantum — a fleet "
                  "shares one quantum grid; give every type the same "
                  "quantum_us (or register variants that agree)");
        }
    }
    if (functionPool.empty())
        fatal("ClusterConfig: functionPool is empty — traffic needs "
              "at least one function to sample (the default is "
              "workload::allFunctions())");
    // With an external traffic model the rate/count knobs are the
    // model's business; only the built-in Poisson source needs them.
    if (!traffic) {
        if (arrivalsPerSecond <= 0)
            fatal("ClusterConfig: arrival rate must be positive");
        if (invocations == 0)
            fatal("ClusterConfig: need at least one invocation");
    }
    if (epoch <= 0)
        fatal("ClusterConfig: epoch must be positive");
    if (keepAlive < 0)
        fatal("ClusterConfig: negative keep-alive");
    if (drainCap <= 0)
        fatal("ClusterConfig: drain cap must be positive");
    if (sharingFactor <= 0)
        fatal("ClusterConfig: sharing factor must be positive");
    faults.validate();
}

Seconds
FleetReport::sumMachineBilledSeconds() const
{
    Seconds sum = 0;
    for (const MachineReport &m : machines)
        sum += m.billedCpuSeconds;
    return sum;
}

Seconds
FleetReport::sumMachineLostSeconds() const
{
    Seconds sum = 0;
    for (const MachineReport &m : machines)
        sum += m.lostCpuSeconds;
    return sum;
}

Seconds
FleetReport::sumMachineAbsorbedSeconds() const
{
    Seconds sum = 0;
    for (const MachineReport &m : machines)
        sum += m.absorbedCpuSeconds;
    return sum;
}

bool
identicalTotals(const FleetReport &a, const FleetReport &b)
{
    return a.arrivals == b.arrivals && a.dispatched == b.dispatched &&
           a.rejectedMemory == b.rejectedMemory &&
           a.completions == b.completions &&
           a.coldStarts == b.coldStarts &&
           a.warmStarts == b.warmStarts &&
           a.billedCpuSeconds == b.billedCpuSeconds &&
           a.commercialUsd == b.commercialUsd &&
           a.litmusUsd == b.litmusUsd &&
           a.meanLatency == b.meanLatency && a.makespan == b.makespan &&
           a.crashes == b.crashes &&
           a.killedInvocations == b.killedInvocations &&
           a.retries == b.retries && a.abandoned == b.abandoned &&
           a.lostCpuSeconds == b.lostCpuSeconds &&
           a.absorbedCpuSeconds == b.absorbedCpuSeconds &&
           a.absorbedUsd == b.absorbedUsd;
}

/**
 * One machine's serving state. The engine, the completion buffer, and
 * the live-invocation map are written by the machine's epoch job (one
 * worker thread at a time); everything else is touched only at the
 * single-threaded dispatch/harvest barriers.
 */
struct Cluster::Machine
{
    /** What the fleet remembers about one live invocation. */
    struct Live
    {
        const workload::FunctionSpec *spec = nullptr;
        bool warm = false;

        /** Arrival sequence number (deterministic retry ordering). */
        std::uint64_t seq = 0;

        /** Dispatch attempts already made when this one launched. */
        unsigned attempt = 0;
    };

    /** A completion captured during an epoch, folded in at harvest. */
    struct Completed
    {
        const workload::FunctionSpec *spec = nullptr;
        bool warm = false;
        sim::TaskCounters counters;
        sim::ProbeCapture probe;
        Seconds launchTime = 0;
        Seconds completionTime = 0;

        /** Engine tick (1-based quantum) the completion landed in;
         *  harvest groups folds by its covering epoch barrier. */
        std::uint64_t tick = 0;
    };

    Machine(unsigned idx, sim::MachineConfig machine_config,
            const ClusterConfig &cfg)
        : index(idx), config(std::move(machine_config)),
          engine(config), ledger(cfg.billing)
    {
        engine.onCompletion([this](sim::Task &task) {
            const auto it = live.find(task.id());
            if (it == live.end())
                panic("cluster machine ", index,
                      ": completion for unknown task ", task.id());
            Completed done;
            done.spec = it->second.spec;
            done.warm = it->second.warm;
            done.counters = task.counters();
            done.probe = task.probe();
            done.launchTime = task.launchTime();
            done.completionTime = task.completionTime();
            done.tick = engine.tickCount();
            completed.push_back(std::move(done));
            live.erase(it);
        });
    }

    unsigned index;

    /** The machine's hardware description; config.name is its type. */
    sim::MachineConfig config;

    sim::Engine engine;
    pricing::BillingLedger ledger;

    /** Discount model bound to this machine's type (null = bill
     *  commercially). Borrowed from the config. */
    const pricing::DiscountModel *discountModel = nullptr;

    /** Task id -> invocation bookkeeping (worker-thread local). */
    // LITMUS-LINT-ALLOW(unordered-decl): task-id keyed completion lookup only; completions fold in engine order, never map order
    std::unordered_map<std::uint64_t, Live> live;

    /** Completions buffered during the current epoch. */
    std::vector<Completed> completed;

    /** Idle warm containers: function name -> keep-alive expiries,
     *  oldest first (consumed most-recently-used from the back). */
    // LITMUS-LINT-ALLOW(unordered-decl): find() on dispatch; the only iteration is the expiry sweep in harvest(), an order-independent min+erase fold (audited below)
    std::unordered_map<std::string, std::deque<Seconds>> warmIdle;

    /** Earliest keep-alive expiry across all pools (may be stale-low
     *  after a warm dispatch; sweeps recompute it). The expiry sweep
     *  is skipped entirely until the fleet clock reaches it. */
    Seconds nextWarmExpiry = std::numeric_limits<double>::infinity();

    /** Memory committed to live invocations (admission control). */
    Bytes committedMemory = 0;

    std::uint64_t dispatched = 0;
    std::uint64_t coldStarts = 0;
    std::uint64_t warmStarts = 0;
    std::uint64_t completions = 0;
    double latencySum = 0;

    /** @name Fault lifecycle (barrier-only state) @{ */
    /** Crashed and not yet restarted: no dispatch, no live work. */
    bool down = false;

    /** Inside a dispatcher-blindness window: up and serving, but the
     *  dispatcher cannot route new arrivals here. */
    bool blind = false;

    /** Current slowdown multiplier (mirrors engine.speedFactor()). */
    double speedFactor = 1.0;

    std::uint64_t crashes = 0;
    std::uint64_t killed = 0;
    Seconds lostCpuSeconds = 0;
    Seconds absorbedCpuSeconds = 0;
    double absorbedUsd = 0;
    /** @} */
};

Cluster::Cluster(ClusterConfig cfg)
    : cfg_(std::move(cfg)), rng_(cfg_.seed)
{
    cfg_.validate();
    dispatcher_ = makeDispatcher(cfg_.policy);

    // Fleet groups and discount-model keys may both use catalog
    // aliases; canonical MachineConfig::name is the one identity
    // everything (binding, reports, profiles) agrees on.
    const auto canonical = [](const std::string &name) {
        return sim::MachineCatalog::has(name)
                   ? sim::MachineCatalog::get(name).name
                   : name;
    };
    std::map<std::string, const pricing::DiscountModel *> modelsByType;
    for (const auto &[key, model] : cfg_.discountModels) {
        if (!model)
            continue;
        const std::string type = canonical(key);
        const auto [it, inserted] = modelsByType.emplace(type, model);
        if (!inserted && it->second != model)
            fatal("ClusterConfig: two discount models bound to "
                  "machine type '", type, "' (one under an alias) — "
                  "keep one per type");
    }

    machines_.reserve(cfg_.totalMachines());
    for (const MachineGroup &group : cfg_.fleet) {
        const sim::MachineConfig machine =
            sim::MachineCatalog::get(group.machine);
        // Bind this type's discount model once per group; a profile
        // calibrated on a different generation must not price it.
        const pricing::DiscountModel *model = nullptr;
        const auto it = modelsByType.find(machine.name);
        if (it != modelsByType.end()) {
            it->second->requireMachine(machine.name);
            model = it->second;
        }
        for (unsigned i = 0; i < group.count; ++i) {
            const unsigned index =
                static_cast<unsigned>(machines_.size());
            machines_.push_back(
                std::make_unique<Machine>(index, machine, cfg_));
            machines_.back()->discountModel = model;
            if (cfg_.exactQuantum)
                machines_.back()->engine.setFastForward(false);
        }
    }
    for (const auto &[type, model] : modelsByType) {
        if (!std::any_of(cfg_.fleet.begin(), cfg_.fleet.end(),
                         [&](const MachineGroup &g) {
                             return canonical(g.machine) == type;
                         })) {
            fatal("ClusterConfig: discount model bound to '", type,
                  "', which is not in the fleet spec");
        }
    }
}

Cluster::~Cluster() = default;

const FleetReport &
Cluster::report() const
{
    if (!ran_)
        fatal("Cluster::report: run() has not completed");
    return report_;
}

const sim::Engine &
Cluster::engine(unsigned machine) const
{
    if (machine >= machines_.size())
        fatal("Cluster::engine: no machine ", machine);
    if (!ran_)
        fatal("Cluster::engine: run() has not completed");
    return machines_[machine]->engine;
}

const pricing::BillingLedger &
Cluster::ledger(unsigned machine) const
{
    if (machine >= machines_.size())
        fatal("Cluster::ledger: no machine ", machine);
    if (!ran_)
        fatal("Cluster::ledger: run() has not completed");
    return machines_[machine]->ledger;
}

std::vector<MachineSnapshot>
Cluster::snapshots() const
{
    std::vector<MachineSnapshot> out;
    out.reserve(machines_.size());
    for (const auto &m : machines_) {
        MachineSnapshot snap;
        snap.index = m->index;
        snap.type = m->config.name;
        snap.cores = m->config.cores;
        snap.baseFrequency = m->config.baseFrequency;
        snap.liveTasks = static_cast<unsigned>(m->engine.taskCount());
        snap.committedMemory = m->committedMemory;
        snap.memoryCapacity = m->config.memoryCapacity;
        snap.warmIdle = &m->warmIdle;
        snap.dispatchable = !m->down && !m->blind;
        snap.speedFactor = m->speedFactor;
        out.push_back(snap);
    }
    return out;
}

void
Cluster::dispatch(const Invocation &inv,
                  std::vector<MachineSnapshot> &snapshots)
{
    unsigned chosen = dispatcher_->pick(inv, snapshots);
    if (chosen >= machines_.size())
        fatal("dispatcher returned machine ", chosen, " of ",
              machines_.size());

    const Bytes footprint = inv.spec->memoryFootprint;
    if (!snapshots[chosen].fits(footprint)) {
        // Spill to the machine with the most free memory; an overfull
        // fleet rejects the arrival (a platform's 429).
        Bytes bestFree = 0;
        bool found = false;
        for (const MachineSnapshot &snap : snapshots) {
            if (!snap.dispatchable)
                continue;
            const Bytes free =
                snap.memoryCapacity - snap.committedMemory;
            if (snap.fits(footprint) && free > bestFree) {
                bestFree = free;
                chosen = snap.index;
                found = true;
            }
        }
        if (!found) {
            ++report_.rejectedMemory;
            return;
        }
    }

    Machine &m = *machines_[chosen];
    auto warmPool = m.warmIdle.find(inv.spec->name);
    const bool warm =
        warmPool != m.warmIdle.end() && !warmPool->second.empty();

    std::unique_ptr<workload::ProgramTask> task;
    workload::InvocationOptions opts;
    if (warm) {
        // Reuse the most recently parked container (LIFO keeps the
        // oldest entries at the front for expiry sweeps).
        warmPool->second.pop_back();
        if (warmPool->second.empty())
            m.warmIdle.erase(warmPool);
        task = workload::makeWarmInvocation(*inv.spec, rng_, opts);
        ++m.warmStarts;
        ++report_.warmStarts;
    } else {
        opts.withProbe = cfg_.probes;
        task = workload::makeInvocation(*inv.spec, rng_, opts);
        ++m.coldStarts;
        ++report_.coldStarts;
    }

    // An idle machine may lag the fleet grid (the event core never
    // steps idle engines); land it on the canonical clock before the
    // work arrives. No-op when the engine stepped every quantum.
    if (m.engine.tickCount() < fleetTick_)
        m.engine.skipIdleQuanta(fleetTick_ - m.engine.tickCount(),
                                fleetClock_);

    sim::Task &handle = m.engine.add(std::move(task));
    m.live.emplace(handle.id(),
                   Machine::Live{inv.spec, warm, inv.seq, inv.attempt});
    m.committedMemory += footprint;
    ++m.dispatched;
    ++report_.dispatched;

    // Keep the batch's snapshots current: no completions happen
    // between dispatches, so incremental updates are exact.
    snapshots[chosen].liveTasks += 1;
    snapshots[chosen].committedMemory = m.committedMemory;
}

void
Cluster::harvest(Seconds now)
{
    const auto fold = [this](Machine &m, const Machine::Completed &done) {
        // A default estimate (rates of 1) bills commercially; a
        // cold invocation with a completed Litmus probe earns the
        // model's discounted rates.
        pricing::DiscountEstimate estimate;
        if (m.discountModel && !done.warm && done.probe.complete) {
            estimate = m.discountModel->estimate(
                pricing::readProbe(done.probe),
                done.spec->language, cfg_.sharingFactor);
        }
        const pricing::PriceQuote quote =
            pricing::quoteWithEstimate(done.counters, estimate);

        m.ledger.record(workload::languageName(done.spec->language),
                        done.spec->name, done.counters, quote,
                        done.spec->memoryFootprint);

        // Fleet accumulation is independent of the ledgers; the
        // conservation test compares the two.
        report_.billedCpuSeconds +=
            done.counters.cycles / cfg_.billing.billingFrequency;
        ++report_.completions;
        ++m.completions;
        const double latency = done.completionTime - done.launchTime;
        m.latencySum += latency;
        latencySum_ += latency;
        m.committedMemory -= done.spec->memoryFootprint;

        // The container goes idle-warm until its keep-alive ends.
        const Seconds expiry = done.completionTime + cfg_.keepAlive;
        m.warmIdle[done.spec->name].push_back(expiry);
        m.nextWarmExpiry = std::min(m.nextWarmExpiry, expiry);
    };

    // Fold completions grouped by covering epoch barrier (ascending),
    // machines in index order within a barrier — the exact order the
    // epoch march accumulates fleet totals one barrier at a time, so
    // a multi-epoch event batch folds bit-identically. Each machine's
    // buffer is tick-monotone (capture order), so one cursor per
    // machine suffices; a single-epoch batch has one barrier group
    // and this degenerates to the plain machine-order fold.
    const auto barrierOf = [this](std::uint64_t tick) {
        return (tick + epochQuanta_ - 1) / epochQuanta_;
    };
    std::vector<std::size_t> cursor(machines_.size(), 0);
    for (;;) {
        std::uint64_t minBarrier =
            std::numeric_limits<std::uint64_t>::max();
        for (std::size_t i = 0; i < machines_.size(); ++i) {
            const auto &completed = machines_[i]->completed;
            if (cursor[i] < completed.size())
                minBarrier = std::min(
                    minBarrier, barrierOf(completed[cursor[i]].tick));
        }
        if (minBarrier == std::numeric_limits<std::uint64_t>::max())
            break;
        for (std::size_t i = 0; i < machines_.size(); ++i) {
            Machine &m = *machines_[i];
            while (cursor[i] < m.completed.size() &&
                   barrierOf(m.completed[cursor[i]].tick) == minBarrier)
                fold(m, m.completed[cursor[i]++]);
        }
    }

    for (const auto &mp : machines_) {
        Machine &m = *mp;
        m.completed.clear();

        // Expire idle containers whose keep-alive has lapsed. Nothing
        // can lapse before the tracked minimum, so the sweep is
        // skipped (bit-identically: it would be a no-op) until then.
        if (now < m.nextWarmExpiry)
            continue;
        ++report_.sched.eventsKeepAlive;
        m.nextWarmExpiry = std::numeric_limits<double>::infinity();
        // LITMUS-LINT-ALLOW(unordered-iter): order-independent fold — min() over pool fronts commutes and erasing expired pools is per-key; no report, billing total, or dispatch decision sees the visit order
        for (auto it = m.warmIdle.begin(); it != m.warmIdle.end();) {
            std::deque<Seconds> &pool = it->second;
            while (!pool.empty() && pool.front() <= now)
                pool.pop_front();
            if (pool.empty()) {
                it = m.warmIdle.erase(it);
            } else {
                m.nextWarmExpiry =
                    std::min(m.nextWarmExpiry, pool.front());
                ++it;
            }
        }
    }
}

void
Cluster::scheduleRetry(const workload::FunctionSpec *spec,
                       std::uint64_t seq, unsigned attempt, Seconds now)
{
    // `attempt` is the 0-based index of the dispatch the crash just
    // destroyed, so attempt + 1 dispatches have been made in total.
    const FaultSpec &f = cfg_.faults;
    bool retry = false;
    Seconds due = now;
    switch (f.retry) {
    case RetryPolicy::Drop:
        break;
    case RetryPolicy::RetryOnce:
        // One immediate re-dispatch: eligible at this very barrier.
        retry = attempt == 0;
        break;
    case RetryPolicy::RetryBackoff:
        retry = attempt + 1 < f.retryMax;
        due = now + f.retryBackoff *
                        static_cast<double>(std::uint64_t{1} << attempt);
        break;
    }
    if (!retry) {
        ++report_.abandoned;
        return;
    }
    ++report_.retries;

    Invocation inv;
    inv.spec = spec;
    inv.arrival = due;
    inv.seq = seq;
    inv.attempt = attempt + 1;
    latestRetry_ = std::max(latestRetry_, due);
    // Keep the queue sorted by (due, seq): crashes are processed in
    // (event, machine, task) order and due times are monotone per
    // invocation, so the serve order is deterministic.
    const auto pos = std::upper_bound(
        retryQueue_.begin(), retryQueue_.end(), inv,
        [](const Invocation &a, const Invocation &b) {
            if (a.arrival != b.arrival)
                return a.arrival < b.arrival;
            return a.seq < b.seq;
        });
    retryQueue_.insert(pos, inv);
}

void
Cluster::crashMachine(Machine &m, Seconds now)
{
    ++m.crashes;
    ++report_.crashes;
    m.down = true;

    // Kill the in-flight invocations and account for the destroyed
    // work. The corpses come back in task-creation order, so loss
    // accounting and retry queueing are deterministic.
    for (const auto &task : m.engine.killAllTasks()) {
        const auto it = m.live.find(task->id());
        if (it == m.live.end())
            panic("cluster machine ", m.index,
                  ": crash killed unknown task ", task->id());
        const Machine::Live &live = it->second;
        const sim::TaskCounters counters = task->counters();
        const Seconds partial =
            counters.cycles / cfg_.billing.billingFrequency;

        ++m.killed;
        ++report_.killedInvocations;
        m.lostCpuSeconds += partial;
        report_.lostCpuSeconds += partial;

        if (counters.cycles == 0) {
            // Killed before it ever ran (dispatched this barrier, or
            // queued behind busy cores): no work was destroyed and
            // nothing may be billed — a zero-cycle ledger record
            // would divide 0 by 0 normalizing the Litmus price.
        } else if (cfg_.faults.billing == FaultBilling::TenantPays) {
            // Cloud reality: the tenant pays the commercial price for
            // the cycles the dead invocation burned. No probe ever
            // completes on a killed invocation, so there is never a
            // Litmus discount on failure bills.
            const pricing::PriceQuote quote = pricing::quoteWithEstimate(
                counters, pricing::DiscountEstimate{});
            m.ledger.record(
                workload::languageName(live.spec->language),
                live.spec->name, counters, quote,
                live.spec->memoryFootprint);
            report_.billedCpuSeconds += partial;
        } else {
            // The provider eats the loss; mirror the ledger's USD
            // arithmetic exactly so tenant-pays and provider-absorbs
            // split one identical total.
            const double memoryGiB =
                static_cast<double>(live.spec->memoryFootprint) /
                (1024.0 * 1024 * 1024);
            const double usd =
                partial * memoryGiB * cfg_.billing.usdPerGiBSecond;
            m.absorbedCpuSeconds += partial;
            report_.absorbedCpuSeconds += partial;
            m.absorbedUsd += usd;
            report_.absorbedUsd += usd;
        }

        scheduleRetry(live.spec, live.seq, live.attempt, now);
        m.live.erase(it);
    }
    if (!m.live.empty())
        panic("cluster machine ", m.index,
              ": live invocations survived a crash");

    // State loss: committed memory and every warm container are gone,
    // and the expiry tracker resets with them — a fresh minimum is
    // established as post-restart completions park containers.
    m.committedMemory = 0;
    m.warmIdle.clear();
    m.nextWarmExpiry = std::numeric_limits<double>::infinity();
}

void
Cluster::applyFaults(Seconds now)
{
    const std::vector<FaultEvent> &events = faultPlan_.events();
    while (faultCursor_ < events.size() &&
           events[faultCursor_].at <= now) {
        const FaultEvent &ev = events[faultCursor_++];
        ++report_.sched.eventsFault;
        Machine &m = *machines_[ev.machine];
        switch (ev.kind) {
        case FaultKind::Crash:
            // Scripted and stochastic windows may overlap on one
            // machine; a crash while already down merges into the
            // open outage (the earliest restart revives it).
            if (!m.down)
                crashMachine(m, now);
            break;
        case FaultKind::Restart:
            m.down = false;
            break;
        case FaultKind::SlowStart:
            m.speedFactor = ev.factor;
            m.engine.setSpeedFactor(ev.factor);
            break;
        case FaultKind::SlowEnd:
            m.speedFactor = 1.0;
            m.engine.setSpeedFactor(1.0);
            break;
        case FaultKind::BlindStart:
            m.blind = true;
            break;
        case FaultKind::BlindEnd:
            m.blind = false;
            break;
        }
    }
}

namespace
{

/**
 * The built-in open-loop Poisson source (ClusterConfig::traffic ==
 * nullptr) as a native stream: one fork() of the arrival Rng, then
 * the legacy draw order per arrival — inter-arrival gap, then the
 * uniform pool pick — which the scenario layer's `poisson` model
 * reproduces bit-exactly from the same substream.
 */
class InlinePoissonStream final : public ArrivalStream
{
  public:
    InlinePoissonStream(
        Rng &rng, double rate, std::uint64_t count,
        const std::vector<const workload::FunctionSpec *> &pool)
        : ArrivalStream("inline-poisson"), rng_(rng.fork()),
          rate_(rate), remaining_(count), pool_(pool)
    {
    }

  protected:
    bool produce(Invocation &out) override
    {
        if (remaining_ == 0)
            return false;
        --remaining_;
        at_ += rng_.exponential(1.0 / rate_);
        out.arrival = at_;
        out.spec = pool_[rng_.below(pool_.size())];
        return true;
    }

  private:
    Rng rng_;
    double rate_;
    std::uint64_t remaining_;
    /** Borrowed from ClusterConfig, which outlives the run. */
    const std::vector<const workload::FunctionSpec *> &pool_;
    Seconds at_ = 0;
};

/** Drain a stream into a vector (the upfront-arrivals A/B path). */
std::vector<Invocation>
drainStream(ArrivalStream &stream)
{
    std::vector<Invocation> trace;
    Invocation inv;
    while (stream.next(inv))
        trace.push_back(inv);
    return trace;
}

} // namespace

/** Per-run serving state shared by both backends. */
struct Cluster::Serve
{
    explicit Serve(unsigned threads) : pool(threads) {}

    /** The arrival cursor both backends pull lazily; under
     *  ClusterConfig::upfrontArrivals a replay of the materialized
     *  trace (same arrivals, O(total) resident). */
    std::unique_ptr<ArrivalStream> stream;

    /** The next undispatched arrival (nullptr at end of stream). */
    const Invocation *head() { return stream->peek(); }

    /** @name Drain-cap bases @{ */
    /** Latest arrival *pulled* so far; the peeked head extends the
     *  drain base separately while arrivals remain. */
    Seconds lastArrival = 0;
    Seconds lastFault = 0;
    /** @} */

    /** What one epoch actually advances: epochs that are not a whole
     *  number of quanta round up to the covering quantum, so targets
     *  must be computed against this span, not cfg.epoch. */
    Seconds epochSpan = 0;

    /** Worker pool advancing busy engines between barriers. */
    EpochPool pool;
};

bool
Cluster::anyLive() const
{
    return std::any_of(machines_.begin(), machines_.end(),
                       [](const auto &m) {
                           return m->engine.taskCount() > 0;
                       });
}

void
Cluster::advanceFleetEpochs(std::uint64_t epochs)
{
    const Seconds quantum = machines_.front()->engine.quantum();
    const std::uint64_t quanta = epochs * epochQuanta_;
    // One fadd per quantum — the same accumulation every stepping
    // engine performs, so synced engines land on fleetClock_ exactly.
    for (std::uint64_t q = 0; q < quanta; ++q)
        fleetClock_ += quantum;
    fleetTick_ += quanta;
}

std::uint64_t
Cluster::advanceClockToCover(Seconds target)
{
    std::uint64_t epochs = 0;
    do {
        advanceFleetEpochs(1);
        ++epochs;
    } while (fleetClock_ < target);
    return epochs;
}

void
Cluster::dispatchDue(Serve &s, Seconds now)
{
    // Arrivals are dispatched at the first epoch boundary at or after
    // their arrival time (never early), with warm containers parked
    // by this barrier's completions already visible. Due retries
    // interleave with due arrivals in (time, seq) order — a retry's
    // seq predates every pending arrival's. One snapshot set serves
    // the whole batch (dispatch keeps it current); if no machine is
    // dispatchable, everything due waits for the barrier that reopens
    // the fleet. The stream head is peeked (not pulled) until the
    // batch actually takes it, so a blocked fleet buffers at most one
    // arrival.
    const Invocation *head = s.head();
    const bool anyDue =
        (head != nullptr && head->arrival <= now) ||
        (!retryQueue_.empty() && retryQueue_.front().arrival <= now);
    if (!anyDue)
        return;
    auto snaps = snapshots();
    const bool open = std::any_of(snaps.begin(), snaps.end(),
                                  [](const MachineSnapshot &snap) {
                                      return snap.dispatchable;
                                  });
    while (open) {
        head = s.head();
        const bool arrivalDue = head != nullptr && head->arrival <= now;
        const bool retryDue = !retryQueue_.empty() &&
                              retryQueue_.front().arrival <= now;
        if (!arrivalDue && !retryDue)
            break;
        bool takeRetry = retryDue;
        if (arrivalDue && retryDue) {
            const Invocation &r = retryQueue_.front();
            takeRetry = r.arrival < head->arrival ||
                        (r.arrival == head->arrival &&
                         r.seq < head->seq);
        }
        if (takeRetry) {
            const Invocation inv = retryQueue_.front();
            retryQueue_.erase(retryQueue_.begin());
            ++report_.sched.eventsRetry;
            dispatch(inv, snaps);
        } else {
            Invocation inv;
            s.stream->next(inv);
            s.lastArrival = inv.arrival;
            ++report_.sched.eventsArrival;
            dispatch(inv, snaps);
        }
    }
}

Seconds
Cluster::serveEpoch(Serve &s)
{
    std::uint64_t epochsBatch = 1;
    std::vector<std::function<void()>> jobs;
    jobs.reserve(machines_.size());
    for (const auto &m : machines_) {
        Machine *machine = m.get();
        jobs.emplace_back([this, machine, &epochsBatch] {
            machine->engine.runQuanta(epochsBatch * epochQuanta_);
        });
    }

    const std::vector<FaultEvent> &faultEvents = faultPlan_.events();
    while (s.head() != nullptr || !retryQueue_.empty() || anyLive()) {
        // The drain base extends over the peeked head while arrivals
        // remain: the fleet is never "failing to drain" while the
        // stream still owes it work.
        Seconds drainBase = std::max(
            s.lastArrival, std::max(s.lastFault, latestRetry_));
        if (const Invocation *head = s.head())
            drainBase = std::max(drainBase, head->arrival);
        if (fleetClock_ > drainBase + cfg_.drainCap)
            fatal("Cluster::run: fleet failed to drain within ",
                  cfg_.drainCap, " simulated seconds of the last "
                  "arrival");
        // Idle fast-forward: with no live task anywhere, nothing can
        // complete and no warm pool can grow, so the next due event —
        // arrival, retry, or fault transition — is the only
        // interesting time: run every epoch before it as one batch
        // (one barrier instead of thousands). The engines still
        // execute every quantum (cheaply, via their idle replay plan),
        // keep-alive expiry sweeps are monotone in the clock, and the
        // conservative floor means the dispatch boundary itself is
        // reached by normal single-epoch stepping — so totals and
        // stats stay bit-identical to exact mode. Work already due
        // but blocked behind a fleet-wide outage or blindness window
        // contributes no target; the pending fault transition that
        // unblocks it does.
        epochsBatch = 1;
        if (!cfg_.exactQuantum && !anyLive()) {
            const Seconds inf =
                std::numeric_limits<double>::infinity();
            Seconds target = inf;
            if (const Invocation *head = s.head();
                head != nullptr && head->arrival > fleetClock_)
                target = std::min(target, head->arrival);
            if (!retryQueue_.empty() &&
                retryQueue_.front().arrival > fleetClock_)
                target = std::min(target, retryQueue_.front().arrival);
            if (faultCursor_ < faultEvents.size())
                target = std::min(target, faultEvents[faultCursor_].at);
            const double gap = target == inf ? 0 : target - fleetClock_;
            if (gap > s.epochSpan) {
                epochsBatch = std::max<std::uint64_t>(
                    1, static_cast<std::uint64_t>(gap / s.epochSpan));
            }
        }
        const bool live = anyLive();
        s.pool.run(jobs);
        // All engines execute the same quantum count, so the canonical
        // clock (the same fadd sequence) is every machine's clock.
        advanceFleetEpochs(epochsBatch);
        ++report_.sched.barriers;
        if (live)
            ++report_.sched.eventsProgress;
        const Seconds now = fleetClock_;
        harvest(now);
        // Fault transitions apply at the barrier after their
        // timestamp — the same granularity as dispatch. Completions
        // harvested above beat a crash landing at this barrier; a
        // machine restarting here accepts dispatches immediately.
        applyFaults(now);
        dispatchDue(s, now);
    }
    return fleetClock_;
}

Seconds
Cluster::serveEvent(Serve &s)
{
    const std::vector<FaultEvent> &faultEvents = faultPlan_.events();
    EventQueue queue;
    std::vector<Event> armed;
    std::vector<std::function<void()>> jobs;
    jobs.reserve(machines_.size());

    // Conservative barrier-tick estimate for event ordering; dueness
    // is always decided against the exact accumulated fleet clock, so
    // an estimate one barrier off cannot move an event.
    const auto tickEstimate = [this, &s](Seconds time) {
        return static_cast<std::uint64_t>(
                   std::ceil(time / s.epochSpan)) *
               epochQuanta_;
    };

    while (s.head() != nullptr || !retryQueue_.empty() || anyLive()) {
        Seconds drainBase = std::max(
            s.lastArrival, std::max(s.lastFault, latestRetry_));
        if (const Invocation *pending = s.head())
            drainBase = std::max(drainBase, pending->arrival);
        if (fleetClock_ > drainBase + cfg_.drainCap)
            fatal("Cluster::run: fleet failed to drain within ",
                  cfg_.drainCap, " simulated seconds of the last "
                  "arrival");

        // Arm the head event of each class. Only *future* arrivals
        // and retries arm: work already due but blocked behind a
        // fleet-wide outage contributes no target (the epoch loop's
        // rule exactly) — the fault transition that unblocks it does,
        // and the fault head is always armed. Arming peeks the stream
        // head without pulling it, so the queue holds one arrival per
        // stream, never the trace.
        queue.clear();
        if (const Invocation *head = s.head();
            head != nullptr && head->arrival > fleetClock_) {
            queue.push({tickEstimate(head->arrival),
                        EventClass::Arrival, 0, head->seq,
                        head->arrival});
        }
        if (!retryQueue_.empty() &&
            retryQueue_.front().arrival > fleetClock_) {
            queue.push({tickEstimate(retryQueue_.front().arrival),
                        EventClass::Retry, 0,
                        retryQueue_.front().seq,
                        retryQueue_.front().arrival});
        }
        if (faultCursor_ < faultEvents.size()) {
            const FaultEvent &f = faultEvents[faultCursor_];
            queue.push({tickEstimate(f.at), EventClass::Fault,
                        f.machine, faultCursor_, f.at});
        }
        const bool live = anyLive();
        const bool workPending =
            s.head() != nullptr || !retryQueue_.empty();

        // Keep-alive expiries coalesce lazily: one event for the
        // fleet-wide earliest expiry; the sweep it triggers clears
        // everything lapsed at once. Armed only while work is in
        // flight — an idle fleet's sweeps fold into the next real
        // barrier (the epoch oracle's own idle-jump rule), and the
        // sweep's outcome is the same either way.
        if (live) {
            Seconds warmMin = std::numeric_limits<double>::infinity();
            unsigned warmMachine = 0;
            for (const auto &m : machines_) {
                if (m->nextWarmExpiry < warmMin) {
                    warmMin = m->nextWarmExpiry;
                    warmMachine = m->index;
                }
            }
            if (warmMin > fleetClock_ &&
                warmMin < std::numeric_limits<double>::infinity()) {
                queue.push({tickEstimate(warmMin),
                            EventClass::KeepAlive, warmMachine, 0,
                            warmMin});
            }
        }

        std::uint64_t epochs = 1;
        if (!queue.empty() && (workPending || !live)) {
            // The heap pops in deterministic (tick, class, machine,
            // seq) order; the advance target is the minimum exact
            // time over the heads (tick estimates are conservative,
            // so scan rather than trust the head alone).
            armed.clear();
            while (!queue.empty())
                armed.push_back(queue.pop());
            Seconds target = armed.front().time;
            for (const Event &e : armed)
                target = std::min(target, e.time);
            if (live) {
                // Busy machines batch straight to the first barrier
                // covering the earliest event; every intermediate
                // barrier is provably a no-op (nothing due, fleet
                // state frozen between events) and harvest re-folds
                // the batch's completions in oracle order.
                epochs = advanceClockToCover(target);
            } else {
                // Idle fleet: reproduce the epoch oracle's
                // conservative jump bit-for-bit — floor(gap/span)
                // epochs in one batch, then single steps to the
                // boundary on later iterations. Matching the
                // oracle's barrier sequence here matters: a trace
                // arrival due before the first barrier (t=0) is
                // served at whatever barrier the jump lands on.
                const double gap = target - fleetClock_;
                if (gap > s.epochSpan)
                    epochs = std::max<std::uint64_t>(
                        1,
                        static_cast<std::uint64_t>(gap / s.epochSpan));
                advanceFleetEpochs(epochs);
            }
        } else {
            // Drain phase (live work, nothing left to dispatch):
            // march one epoch at a time so the loop exits the moment
            // the fleet drains — exactly when the epoch oracle does,
            // before any later fault event fires. Also the fallback
            // when nothing is armed at all (everything due is blocked
            // and no fault is pending: creep to the drain-cap fatal
            // on the same barrier the oracle would).
            advanceFleetEpochs(1);
        }

        // Advance every busy machine to the new barrier in parallel;
        // idle machines are never stepped — they sync lazily at their
        // next dispatch via Engine::skipIdleQuanta.
        jobs.clear();
        const std::uint64_t quanta = epochs * epochQuanta_;
        for (const auto &m : machines_) {
            Machine *machine = m.get();
            if (machine->engine.taskCount() > 0)
                jobs.emplace_back([machine, quanta] {
                    machine->engine.runQuanta(quanta);
                });
        }
        if (!jobs.empty())
            s.pool.run(jobs);
        ++report_.sched.barriers;
        if (live)
            ++report_.sched.eventsProgress;

        const Seconds now = fleetClock_;
        harvest(now);
        applyFaults(now);
        dispatchDue(s, now);
    }

    // Land every engine on the final barrier, so inspection (and the
    // quanta + skipped conservation identity) sees one fleet clock.
    for (const auto &m : machines_) {
        if (m->engine.tickCount() < fleetTick_)
            m->engine.skipIdleQuanta(
                fleetTick_ - m->engine.tickCount(), fleetClock_);
    }
    return fleetClock_;
}

const FleetReport &
Cluster::run()
{
    if (ran_)
        fatal("Cluster::run called twice");

    const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
    const unsigned threads =
        cfg_.threads > 0
            ? cfg_.threads
            : std::min(static_cast<unsigned>(machines_.size()), hw);

    Serve s(threads);

    // Arrival generation draws from its own SplitMix64-derived
    // substream of the seed (rng_ keeps the raw seed for dispatch
    // jitter), so traffic is identical across dispatch policies and
    // thread counts, and pulling the stream lazily versus draining it
    // upfront cannot perturb any other draw — the arrivals are
    // bit-identical either way, which run modes below A/B.
    Rng trafficRng(deriveArrivalSeed(cfg_.seed));
    if (cfg_.traffic) {
        if (cfg_.upfrontArrivals)
            s.stream = replayStream(
                cfg_.traffic->generate(trafficRng, cfg_.functionPool),
                cfg_.traffic->name());
        else
            s.stream = cfg_.traffic->open(trafficRng, cfg_.functionPool);
        if (s.stream == nullptr)
            fatal("Cluster::run: traffic model '",
                  cfg_.traffic->name(), "' opened a null stream");
        if (s.stream->peek() == nullptr)
            fatal("Cluster::run: traffic model '",
                  cfg_.traffic->name(),
                  "' generated no arrivals — check its rate/"
                  "invocations/duration knobs");
    } else {
        auto inlineStream = std::make_unique<InlinePoissonStream>(
            trafficRng, cfg_.arrivalsPerSecond, cfg_.invocations,
            cfg_.functionPool);
        if (cfg_.upfrontArrivals)
            s.stream = replayStream(drainStream(*inlineStream),
                                    inlineStream->model());
        else
            s.stream = std::move(inlineStream);
    }

    // Epoch length in whole quanta, computed once on the engines'
    // integer tick grid: every inter-barrier advance below is a whole
    // number of epochs of exactly this many quanta, so a multi-epoch
    // fast-forward executes the same quantum sequence as single-epoch
    // stepping.
    epochQuanta_ = machines_.front()->engine.quantaForDuration(cfg_.epoch);
    s.epochSpan = static_cast<double>(epochQuanta_) *
                  machines_.front()->engine.quantum();

    // Compile the fault campaign into one deterministic schedule over
    // the expected arrival window (scripted faults may land past it;
    // every crash carries its restart). Streaming retired the
    // materialized trace whose realized last timestamp used to bound
    // the stochastic fault processes, so the horizon is the model's
    // own estimate — the same number in streaming and upfront modes,
    // so the compiled schedule (and everything downstream) stays
    // bit-identical between them. Custom generate()-only models fall
    // back to their replay stream's exact last timestamp. The drain
    // deadline extends over pending fault transitions and queued
    // retries: a fleet waiting out an outage is making progress, not
    // hanging.
    Seconds horizon = cfg_.traffic
                          ? cfg_.traffic->horizonHint()
                          : static_cast<double>(cfg_.invocations) /
                                cfg_.arrivalsPerSecond;
    if (horizon <= 0)
        horizon = s.stream->horizonHint();
    faultPlan_ = FaultPlan::compile(cfg_.faults, cfg_.totalMachines(),
                                    horizon, cfg_.seed);
    s.lastFault = faultPlan_.events().empty()
                      ? 0
                      : faultPlan_.events().back().at;

    // exactQuantum times the true unbatched baseline, so it forces
    // the epoch oracle regardless of the configured backend.
    const SchedulerBackend backend = cfg_.exactQuantum
                                         ? SchedulerBackend::Epoch
                                         : cfg_.scheduler;
    report_.sched.scheduler = schedulerName(backend);
    report_.makespan = backend == SchedulerBackend::Event
                           ? serveEvent(s)
                           : serveEpoch(s);
    report_.sched.barriersElided =
        fleetTick_ / epochQuanta_ - report_.sched.barriers;
    // Both backends pull the stream dry before draining, so pulled
    // equals the arrivals served — the same total the materialized
    // trace's size used to report.
    report_.arrivals = s.stream->pulled();
    report_.arrivalFlow.model = s.stream->model();
    report_.arrivalFlow.mode =
        cfg_.upfrontArrivals ? "upfront" : "streaming";
    report_.arrivalFlow.generated = s.stream->generated();
    report_.arrivalFlow.pulled = s.stream->pulled();
    report_.arrivalFlow.bufferedMax = s.stream->bufferedMax();
    for (const auto &m : machines_)
        report_.sched.idleQuantaSkipped += static_cast<std::uint64_t>(
            m->engine.stats().skippedQuanta.value());
    report_.meanLatency = report_.completions > 0
                              ? latencySum_ / report_.completions
                              : 0.0;
    report_.commercialUsd = 0;
    report_.litmusUsd = 0;
    report_.machines.clear();
    report_.machines.reserve(machines_.size());
    for (const auto &mp : machines_) {
        const Machine &m = *mp;
        MachineReport mr;
        mr.index = m.index;
        mr.type = m.config.name;
        mr.dispatched = m.dispatched;
        mr.coldStarts = m.coldStarts;
        mr.warmStarts = m.warmStarts;
        mr.completions = m.completions;
        for (const pricing::BillRecord &rec : m.ledger.records())
            mr.billedCpuSeconds += rec.cpuSeconds;
        mr.commercialUsd = m.ledger.totalCommercialUsd();
        mr.litmusUsd = m.ledger.totalLitmusUsd();
        mr.meanLatency =
            m.completions > 0 ? m.latencySum / m.completions : 0.0;
        // Quanta *covered* on the canonical grid: executed plus
        // idle-elided. Identical across backends (and thread counts)
        // even though the event core never steps idle engines.
        mr.quanta = m.engine.stats().quanta.value() +
                    m.engine.stats().skippedQuanta.value();
        mr.crashes = m.crashes;
        mr.killedInvocations = m.killed;
        mr.lostCpuSeconds = m.lostCpuSeconds;
        mr.absorbedCpuSeconds = m.absorbedCpuSeconds;
        mr.absorbedUsd = m.absorbedUsd;
        report_.commercialUsd += mr.commercialUsd;
        report_.litmusUsd += mr.litmusUsd;
        report_.machines.push_back(mr);
    }

    // Per-type revenue/discount breakdown, merged by type in
    // first-seen order (a type split across several fleet groups
    // still gets one row), folded in machine order like the fleet
    // sums.
    report_.types.clear();
    for (const MachineReport &mr : report_.machines) {
        auto slot = std::find_if(report_.types.begin(),
                                 report_.types.end(),
                                 [&](const TypeReport &t) {
                                     return t.type == mr.type;
                                 });
        if (slot == report_.types.end()) {
            TypeReport fresh;
            fresh.type = mr.type;
            report_.types.push_back(fresh);
            slot = report_.types.end() - 1;
        }
        TypeReport &tr = *slot;
        ++tr.machines;
        tr.dispatched += mr.dispatched;
        tr.coldStarts += mr.coldStarts;
        tr.warmStarts += mr.warmStarts;
        tr.completions += mr.completions;
        tr.billedCpuSeconds += mr.billedCpuSeconds;
        tr.commercialUsd += mr.commercialUsd;
        tr.litmusUsd += mr.litmusUsd;
        tr.crashes += mr.crashes;
        tr.killedInvocations += mr.killedInvocations;
        tr.lostCpuSeconds += mr.lostCpuSeconds;
        tr.absorbedCpuSeconds += mr.absorbedCpuSeconds;
        tr.absorbedUsd += mr.absorbedUsd;
    }

    ran_ = true;
    return report_;
}

} // namespace litmus::cluster
