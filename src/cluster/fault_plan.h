/**
 * @file
 * Fault injection: declarative fault campaigns compiled into a
 * deterministic event schedule.
 *
 * A production FaaS fleet loses machines mid-invocation; the billing
 * and fairness guarantees are only credible if they hold through
 * those failures. A FaultSpec describes a fault campaign the same way
 * a TrafficSpec describes an arrival process — three independent
 * fault classes, each either a seeded stochastic process (mean time
 * between faults per machine) or a scripted list of one-shot events:
 *
 *  - crash  the machine dies with full state loss (in-flight
 *           invocations killed, warm containers gone) and restarts
 *           cold after a fixed delay;
 *  - slow   a transient degradation window (thermal throttling,
 *           co-tenant interference): the machine keeps serving but at
 *           a fraction of its clock;
 *  - blind  dispatcher blindness (network-partition style): the
 *           machine is up and finishes its work, but the dispatcher
 *           cannot route new arrivals to it.
 *
 * FaultPlan::compile turns the spec into one sorted event list before
 * the fleet starts serving, from an Rng seeded by fault.seed (derived
 * from the scenario seed when unset) — identical specs produce
 * identical fault timelines at any thread count, and each machine and
 * fault class draws from its own stream, so enabling slowdowns never
 * moves the crash schedule.
 *
 * What happens to the half-run invocation is policy, not accident:
 * RetryPolicy says whether killed invocations are re-dispatched, and
 * FaultBilling says who pays for the work the crash destroyed. The
 * billing-conservation invariant extends through failures: billed
 * work plus provider-absorbed loss equals all work performed.
 */

#ifndef LITMUS_CLUSTER_FAULT_PLAN_H
#define LITMUS_CLUSTER_FAULT_PLAN_H

#include <cstdint>
#include <string>
#include <vector>

#include "common/units.h"

namespace litmus::cluster
{

/** What happens to an invocation killed by a machine crash. */
enum class RetryPolicy
{
    /** The invocation is lost; the platform reports a failure. */
    Drop,

    /** One immediate re-dispatch; a second crash drops it. */
    RetryOnce,

    /** Re-dispatch after fault.retry.backoff seconds, doubling per
     *  attempt, up to fault.retry.max attempts in total. */
    RetryBackoff,
};

/** Display name: "drop" / "retry-once" / "retry-backoff". */
std::string retryPolicyName(RetryPolicy policy);

/** Parse a policy name (also accepts "once" / "backoff"). */
RetryPolicy retryPolicyByName(const std::string &name);

/** Who pays for the partial work a crash destroyed. */
enum class FaultBilling
{
    /** The tenant is charged the commercial price for the cycles the
     *  killed invocation burned (cloud reality for most platforms). */
    TenantPays,

    /** The provider eats the loss: the burned cycles are never
     *  billed, and their commercial value is reported as absorbed
     *  revenue. */
    ProviderAbsorbs,
};

/** Display name: "tenant-pays" / "provider-absorbs". */
std::string faultBillingName(FaultBilling billing);

/** Parse a billing mode (also accepts "tenant" / "provider"). */
FaultBilling faultBillingByName(const std::string &name);

/** One scripted (explicitly timed) fault. */
struct ScriptedFault
{
    Seconds at = 0;
    unsigned machine = 0;
};

/**
 * Parse a scripted-fault list: "time[@machine]" entries separated by
 * ',' or ';' (the CLI uses ';' because ',' separates --faults
 * pieces), e.g. "0.5@1;2.0". The machine defaults to 0. fatal() on
 * malformed entries; machine indices are range-checked at compile.
 */
std::vector<ScriptedFault>
parseScriptedFaults(const std::string &key, const std::string &value);

/**
 * Declarative fault campaign. The scenario fault.* keys map
 * one-to-one (see ScenarioSpec::set); all-defaults means "no faults"
 * and the cluster skips the fault machinery entirely.
 */
struct FaultSpec
{
    /** Fault-schedule seed; 0 derives one from the scenario seed, so
     *  identical scenarios get identical fault timelines without
     *  sharing a stream with the traffic generator. */
    std::uint64_t seed = 0;

    /** @name Machine crash with state loss @{ */
    /** Mean time between crashes per machine (s); 0 disables the
     *  stochastic crash process. */
    Seconds crashMtbf = 0;

    /** Downtime until the crashed machine restarts (cold: no warm
     *  containers survive). Must be positive when crashes are on —
     *  machines always come back, so the fleet always drains. */
    Seconds restartDelay = 5.0;

    /** Scripted crashes (in addition to the stochastic process). */
    std::vector<ScriptedFault> crashAt;
    /** @} */

    /** @name Transient slowdown windows @{ */
    /** Mean time between slowdown windows per machine (s); 0
     *  disables the stochastic process. */
    Seconds slowMtbf = 0;

    /** Window length (s). */
    Seconds slowDuration = 2.0;

    /** Effective machine speed during a window, in (0, 1]: 0.5 runs
     *  the machine at half clock. */
    double slowFactor = 0.5;

    /** Scripted window starts. */
    std::vector<ScriptedFault> slowAt;
    /** @} */

    /** @name Dispatcher blindness windows @{ */
    /** Mean time between blindness windows per machine (s); 0
     *  disables the stochastic process. */
    Seconds blindMtbf = 0;

    /** Window length (s). */
    Seconds blindDuration = 2.0;

    /** Scripted window starts. */
    std::vector<ScriptedFault> blindAt;
    /** @} */

    /** @name Failure policy @{ */
    RetryPolicy retry = RetryPolicy::RetryOnce;

    /** Total dispatch attempts per invocation under RetryBackoff
     *  (the first dispatch counts; >= 2 to retry at all). */
    unsigned retryMax = 3;

    /** First re-dispatch delay under RetryBackoff (s), doubling with
     *  every further attempt. */
    Seconds retryBackoff = 0.5;

    FaultBilling billing = FaultBilling::ProviderAbsorbs;
    /** @} */

    /** True when any fault source (stochastic or scripted) is
     *  configured; false lets the cluster skip fault handling. */
    bool enabled() const;

    /** fatal() on out-of-range parameters. */
    void validate() const;
};

/**
 * Event kinds, declared in their same-timestamp application order: a
 * machine restarting or a window ending at time t is processed before
 * a new fault starting at t.
 */
enum class FaultKind
{
    Restart,
    SlowEnd,
    BlindEnd,
    Crash,
    SlowStart,
    BlindStart,
};

/** Display name ("crash", "restart", "slow-start", ...). */
std::string faultKindName(FaultKind kind);

/** One scheduled fault transition. */
struct FaultEvent
{
    Seconds at = 0;
    FaultKind kind = FaultKind::Crash;
    unsigned machine = 0;

    /** SlowStart only: the machine speed factor to apply. */
    double factor = 1.0;
};

/**
 * The compiled, deterministic fault schedule: every transition the
 * fleet will apply, sorted by (time, machine, kind). Start events are
 * generated inside [0, horizon); the matching restart / window-end
 * events may land past the horizon so every crash has its restart and
 * every window closes.
 */
class FaultPlan
{
  public:
    FaultPlan() = default;

    /**
     * Compile @p spec for a fleet of @p machines over @p horizon
     * simulated seconds. @p scenarioSeed feeds the fault-seed
     * derivation when spec.seed is 0. fatal() on an invalid spec or a
     * scripted machine index outside the fleet.
     */
    static FaultPlan compile(const FaultSpec &spec, unsigned machines,
                             Seconds horizon,
                             std::uint64_t scenarioSeed);

    const std::vector<FaultEvent> &events() const { return events_; }

    bool empty() const { return events_.empty(); }

  private:
    std::vector<FaultEvent> events_;
};

/** The seed the plan actually draws from: spec.seed, or a SplitMix64
 *  step of the scenario seed when unset (exposed for tests). */
std::uint64_t deriveFaultSeed(const FaultSpec &spec,
                              std::uint64_t scenarioSeed);

} // namespace litmus::cluster

#endif // LITMUS_CLUSTER_FAULT_PLAN_H
