#include "cluster/dispatcher.h"

#include <limits>

#include "common/logging.h"

namespace litmus::cluster
{

std::string
policyName(DispatchPolicy policy)
{
    switch (policy) {
    case DispatchPolicy::RoundRobin:
        return "round-robin";
    case DispatchPolicy::LeastLoaded:
        return "least-loaded";
    case DispatchPolicy::WarmthAware:
        return "warmth-aware";
    case DispatchPolicy::CostAware:
        return "cost-aware";
    }
    fatal("policyName: unknown policy");
}

DispatchPolicy
policyByName(const std::string &name)
{
    if (name == "round-robin" || name == "roundrobin" || name == "rr")
        return DispatchPolicy::RoundRobin;
    if (name == "least-loaded" || name == "leastloaded" || name == "ll")
        return DispatchPolicy::LeastLoaded;
    if (name == "warmth-aware" || name == "warmth")
        return DispatchPolicy::WarmthAware;
    if (name == "cost-aware" || name == "cost")
        return DispatchPolicy::CostAware;
    fatal("policyByName: unknown dispatch policy '", name,
          "' (want round-robin | least-loaded | warmth-aware | "
          "cost-aware)");
}

const std::vector<DispatchPolicy> &
allPolicies()
{
    static const std::vector<DispatchPolicy> policies = {
        DispatchPolicy::RoundRobin,
        DispatchPolicy::LeastLoaded,
        DispatchPolicy::WarmthAware,
        DispatchPolicy::CostAware,
    };
    return policies;
}

std::size_t
MachineSnapshot::warmIdleFor(const std::string &function) const
{
    if (!warmIdle)
        return 0;
    const auto it = warmIdle->find(function);
    return it == warmIdle->end() ? 0 : it->second.size();
}

namespace
{

/** Least live tasks among dispatchable machines; ties go to the
 *  lowest machine index. */
unsigned
leastLoadedIndex(const std::vector<MachineSnapshot> &machines)
{
    unsigned best = 0;
    unsigned bestLoad = std::numeric_limits<unsigned>::max();
    bool found = false;
    for (const MachineSnapshot &m : machines) {
        if (!m.dispatchable)
            continue;
        if (m.liveTasks < bestLoad) {
            bestLoad = m.liveTasks;
            best = m.index;
            found = true;
        }
    }
    if (!found)
        fatal("dispatcher: no dispatchable machine (the cluster must "
              "hold arrivals while the whole fleet is down or blind)");
    return best;
}

class RoundRobinDispatcher final : public Dispatcher
{
  public:
    DispatchPolicy policy() const override
    {
        return DispatchPolicy::RoundRobin;
    }

    unsigned pick(const Invocation &,
                  const std::vector<MachineSnapshot> &machines) override
    {
        // Rotate, skipping machines that are down or blind. With the
        // whole fleet dispatchable this degenerates to next_++ % size,
        // so fault-free runs are untouched.
        for (std::size_t tried = 0; tried < machines.size(); ++tried) {
            const auto i =
                static_cast<std::size_t>(next_++ % machines.size());
            if (machines[i].dispatchable)
                return machines[i].index;
        }
        fatal("dispatcher: no dispatchable machine (the cluster must "
              "hold arrivals while the whole fleet is down or blind)");
    }

  private:
    std::uint64_t next_ = 0;
};

class LeastLoadedDispatcher final : public Dispatcher
{
  public:
    DispatchPolicy policy() const override
    {
        return DispatchPolicy::LeastLoaded;
    }

    unsigned pick(const Invocation &,
                  const std::vector<MachineSnapshot> &machines) override
    {
        return leastLoadedIndex(machines);
    }
};

class WarmthAwareDispatcher final : public Dispatcher
{
  public:
    DispatchPolicy policy() const override
    {
        return DispatchPolicy::WarmthAware;
    }

    unsigned pick(const Invocation &inv,
                  const std::vector<MachineSnapshot> &machines) override
    {
        // Among machines holding an idle warm container for this
        // function, take the least loaded; a cold fleet falls back to
        // plain least-loaded placement.
        unsigned best = 0;
        unsigned bestLoad = std::numeric_limits<unsigned>::max();
        bool found = false;
        for (const MachineSnapshot &m : machines) {
            if (!m.dispatchable)
                continue;
            if (m.warmIdleFor(inv.spec->name) == 0)
                continue;
            if (m.liveTasks < bestLoad) {
                bestLoad = m.liveTasks;
                best = m.index;
                found = true;
            }
        }
        return found ? best : leastLoadedIndex(machines);
    }
};

class CostAwareDispatcher final : public Dispatcher
{
  public:
    DispatchPolicy policy() const override
    {
        return DispatchPolicy::CostAware;
    }

    unsigned pick(const Invocation &,
                  const std::vector<MachineSnapshot> &machines) override
    {
        // Cheapest predicted completion wins: a slower machine with
        // idle cores beats a faster one whose cores already
        // time-share. Strict < keeps ties on the lowest index, so
        // routing is deterministic.
        unsigned best = 0;
        double bestCost = std::numeric_limits<double>::infinity();
        bool found = false;
        for (const MachineSnapshot &m : machines) {
            if (!m.dispatchable)
                continue;
            const double cost = m.predictedCost();
            if (cost < bestCost) {
                bestCost = cost;
                best = m.index;
                found = true;
            }
        }
        if (!found)
            fatal("dispatcher: no dispatchable machine (the cluster "
                  "must hold arrivals while the whole fleet is down "
                  "or blind)");
        return best;
    }
};

} // namespace

std::unique_ptr<Dispatcher>
makeDispatcher(DispatchPolicy policy)
{
    switch (policy) {
    case DispatchPolicy::RoundRobin:
        return std::make_unique<RoundRobinDispatcher>();
    case DispatchPolicy::LeastLoaded:
        return std::make_unique<LeastLoadedDispatcher>();
    case DispatchPolicy::WarmthAware:
        return std::make_unique<WarmthAwareDispatcher>();
    case DispatchPolicy::CostAware:
        return std::make_unique<CostAwareDispatcher>();
    }
    fatal("makeDispatcher: unknown policy");
}

} // namespace litmus::cluster
