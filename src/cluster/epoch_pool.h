/**
 * @file
 * Persistent worker pool with an epoch barrier.
 *
 * The cluster advances all machines in lockstep: every dispatch epoch
 * it hands the pool one job per machine (advance that machine's engine
 * through the epoch) and blocks until every job has run. Workers are
 * created once and parked between epochs, so the per-epoch cost is two
 * condition-variable sweeps instead of thread churn — epochs are short
 * (default 1 ms simulated) and a fleet run executes thousands of them.
 */

#ifndef LITMUS_CLUSTER_EPOCH_POOL_H
#define LITMUS_CLUSTER_EPOCH_POOL_H

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "common/mutex.h"

namespace litmus::cluster
{

/**
 * Fixed-size thread pool executing one batch of jobs per call.
 *
 * run() is a barrier: it returns only after every job has completed,
 * so callers may freely read state the jobs wrote. With one thread
 * (or one job) the batch runs inline on the caller, which keeps
 * single-threaded runs bit-identical and easy to debug.
 */
class EpochPool
{
  public:
    /** @param threads worker threads to park (>= 1). */
    explicit EpochPool(unsigned threads);

    ~EpochPool();

    EpochPool(const EpochPool &) = delete;
    EpochPool &operator=(const EpochPool &) = delete;

    /** Execute all jobs, returning once every one has finished. */
    void run(const std::vector<std::function<void()>> &jobs);

    /** Number of worker threads (1 = inline execution). */
    unsigned threadCount() const { return threads_; }

  private:
    /**
     * One barrier's worth of work. Claim counters live here, not on
     * the pool, so a worker that oversleeps an epoch can only claim
     * from the (exhausted) batch it saw — never from a later one.
     *
     * Memory-ordering audit (the orderings in epoch_pool.cc are load
     * -bearing; see the comments at each operation):
     *  - `jobs`/`total` are plain: written before the batch is
     *    published under mutex_, read only by threads that observed
     *    that publication (mutex acquire) or created the batch.
     *  - `next` uses relaxed RMWs: it only distributes disjoint
     *    indices; no job data is transferred through it.
     *  - `pending` is the handoff: every decrement is a release (the
     *    finished job's writes sit before it), and the barrier's
     *    "all done" load is an acquire. The RMW chain keeps each
     *    decrement in the release sequence headed by every earlier
     *    one, so a single acquire load that sees 0 synchronizes with
     *    *all* workers' job writes.
     */
    struct Batch
    {
        const std::vector<std::function<void()>> *jobs = nullptr;
        std::size_t total = 0;
        std::atomic<std::size_t> next{0};
        std::atomic<std::size_t> pending{0};
    };

    /** Claim and run jobs until the batch is exhausted. */
    void drain(Batch &batch);

    void workerLoop();

    unsigned threads_;
    std::vector<std::thread> workers_; // set in ctor, then immutable

    Mutex mutex_;
    std::condition_variable workReady_;
    std::condition_variable batchDone_;
    std::shared_ptr<Batch> batch_ LITMUS_GUARDED_BY(mutex_);
    std::uint64_t generation_ LITMUS_GUARDED_BY(mutex_) = 0;
    bool stop_ LITMUS_GUARDED_BY(mutex_) = false;
};

} // namespace litmus::cluster

#endif // LITMUS_CLUSTER_EPOCH_POOL_H
