/**
 * @file
 * Fleet dispatch policies: routing one arrival to one machine.
 *
 * The cluster presents each dispatcher with a snapshot of every
 * machine (live tasks, committed memory, warm-container inventory)
 * taken at the current dispatch epoch's barrier, so decisions are
 * deterministic regardless of how many worker threads advance the
 * engines between barriers.
 *
 * Four policies ship:
 *  - RoundRobin:   rotate through machines, ignoring state;
 *  - LeastLoaded:  fewest live tasks wins (ties to the lowest index);
 *  - WarmthAware:  prefer machines holding an idle warm container for
 *    the function (skipping its language startup entirely), falling
 *    back to least-loaded when everyone is cold;
 *  - CostAware:    heterogeneous fleets — estimate the invocation's
 *    relative completion time on every machine from its clock speed
 *    and core oversubscription, so a fast-but-crowded Cascade Lake
 *    loses to an idle Ice Lake exactly when the predicted slowdown
 *    says it should.
 */

#ifndef LITMUS_CLUSTER_DISPATCHER_H
#define LITMUS_CLUSTER_DISPATCHER_H

#include <deque>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "workload/function_model.h"

namespace litmus::cluster
{

/** The routing policies the fleet layer supports. */
enum class DispatchPolicy
{
    RoundRobin,
    LeastLoaded,
    WarmthAware,
    CostAware,
};

/** Display name: "round-robin" / "least-loaded" / "warmth-aware" /
 *  "cost-aware". */
std::string policyName(DispatchPolicy policy);

/** Parse a policy name (also accepts "rr" / "ll" / "warmth" /
 *  "cost"). */
DispatchPolicy policyByName(const std::string &name);

/** One fleet arrival awaiting dispatch. */
struct Invocation
{
    const workload::FunctionSpec *spec = nullptr;

    /** Arrival timestamp in fleet simulated time. */
    Seconds arrival = 0;

    /** Arrival sequence number (stable tie-breaking / tracing). */
    std::uint64_t seq = 0;

    /** Dispatch attempts already made (fault retries; 0 = fresh). */
    unsigned attempt = 0;
};

/**
 * Dispatcher view of one machine at a dispatch barrier.
 *
 * The warm-container inventory is borrowed from the cluster (idle
 * containers per function name, each entry a keep-alive expiry time);
 * snapshots are only valid during the pick() call.
 */
struct MachineSnapshot
{
    unsigned index = 0;

    /** Machine type (catalog name) — heterogeneous fleets route on
     *  it. Borrowed from the cluster; valid during pick(). */
    std::string_view type;

    /** Physical cores (oversubscription denominator). */
    unsigned cores = 1;

    /** Nominal clock (Hz); the cost policy's speed axis. */
    double baseFrequency = 1.0;

    /** False while the machine is down (crashed, not yet restarted)
     *  or the dispatcher is blind to it — no policy may route there.
     *  The cluster only calls pick() when at least one machine is
     *  dispatchable. */
    bool dispatchable = true;

    /** Current effective-speed multiplier (1 = nominal; <1 inside a
     *  slowdown window). The cost policy folds it into the clock. */
    double speedFactor = 1.0;

    /** Live (queued or running) tasks on the machine. */
    unsigned liveTasks = 0;

    /** Memory committed to live invocations. */
    Bytes committedMemory = 0;

    /** The machine's main-memory capacity. */
    Bytes memoryCapacity = 0;

    /** Idle warm containers: function name -> keep-alive expiries. */
    // LITMUS-LINT-ALLOW(unordered-decl): dispatchers only find() by function name (warmIdleFor); no policy iterates the map, so dispatch decisions are order-independent
    const std::unordered_map<std::string, std::deque<Seconds>>
        *warmIdle = nullptr;

    /** Idle warm containers available for the named function. */
    std::size_t warmIdleFor(const std::string &function) const;

    /** True when the machine can admit the given footprint. */
    bool fits(Bytes footprint) const
    {
        return committedMemory + footprint <= memoryCapacity;
    }

    /**
     * Predicted relative completion time of one more task here: the
     * core-oversubscription slowdown (time-sharing beyond one task
     * per core) divided by the clock. Lower is faster; the number is
     * only meaningful relative to other machines' costs.
     */
    double predictedCost() const
    {
        const double occupancy =
            (liveTasks + 1.0) / (cores > 0 ? cores : 1u);
        const double slowdown = occupancy > 1.0 ? occupancy : 1.0;
        const double clock =
            (baseFrequency > 0 ? baseFrequency : 1.0) *
            (speedFactor > 0 ? speedFactor : 1.0);
        return slowdown / clock;
    }
};

/** Routing strategy interface. */
class Dispatcher
{
  public:
    virtual ~Dispatcher() = default;

    virtual DispatchPolicy policy() const = 0;

    /**
     * Choose the machine index for one invocation. @p machines is
     * never empty and always contains at least one dispatchable
     * machine; implementations must return the index of a
     * dispatchable one.
     */
    virtual unsigned pick(const Invocation &inv,
                          const std::vector<MachineSnapshot> &machines) = 0;
};

/** Factory for the built-in policies. */
std::unique_ptr<Dispatcher> makeDispatcher(DispatchPolicy policy);

/** All built-in policies, in a stable order (bench sweeps). */
const std::vector<DispatchPolicy> &allPolicies();

} // namespace litmus::cluster

#endif // LITMUS_CLUSTER_DISPATCHER_H
