#include "cluster/traffic_source.h"

#include <utility>

#include "common/logging.h"

namespace litmus::cluster
{

namespace
{

/**
 * Flags the generate()-default -> open()-default cycle: a model that
 * overrides neither would otherwise recurse forever. thread_local
 * because concurrent runs may open streams from different threads.
 */
thread_local bool inDefaultGenerate = false;

struct DefaultGenerateScope
{
    DefaultGenerateScope() { inDefaultGenerate = true; }
    ~DefaultGenerateScope() { inDefaultGenerate = false; }
};

class VectorReplayStream final : public ArrivalStream
{
  public:
    VectorReplayStream(std::vector<Invocation> trace, std::string model)
        : ArrivalStream(std::move(model)), trace_(std::move(trace))
    {
        noteBuffered(trace_.size());
    }

    Seconds horizonHint() const override
    {
        return trace_.empty() ? 0 : trace_.back().arrival;
    }

  protected:
    bool produce(Invocation &out) override
    {
        if (next_ >= trace_.size())
            return false;
        out = trace_[next_++];
        return true;
    }

  private:
    std::vector<Invocation> trace_;
    std::size_t next_ = 0;
};

} // namespace

ArrivalStream::ArrivalStream(std::string model) : model_(std::move(model))
{
}

bool
ArrivalStream::fill()
{
    if (done_)
        return false;
    if (!produce(slot_)) {
        done_ = true;
        return false;
    }
    if (slot_.spec == nullptr)
        fatal("traffic model '", model_,
              "' emitted an invocation without a function spec");
    if (slot_.arrival < lastArrival_)
        fatal("traffic model '", model_, "' emitted out-of-order arrivals (",
              slot_.arrival, " after ", lastArrival_, ")");
    lastArrival_ = slot_.arrival;
    slot_.seq = generated_;
    ++generated_;
    if (bufferedMax_ < 1)
        bufferedMax_ = 1;
    haveSlot_ = true;
    return true;
}

const Invocation *
ArrivalStream::peek()
{
    if (!haveSlot_ && !fill())
        return nullptr;
    return &slot_;
}

bool
ArrivalStream::next(Invocation &out)
{
    if (!haveSlot_ && !fill())
        return false;
    out = slot_;
    haveSlot_ = false;
    ++pulled_;
    return true;
}

void
ArrivalStream::noteBuffered(std::uint64_t resident)
{
    if (resident > bufferedMax_)
        bufferedMax_ = resident;
}

std::unique_ptr<ArrivalStream>
TrafficSource::open(
    Rng &rng,
    const std::vector<const workload::FunctionSpec *> &pool) const
{
    if (inDefaultGenerate)
        fatal("traffic model '", name(),
              "' implements neither open() nor generate()");
    return replayStream(generate(rng, pool), name());
}

std::vector<Invocation>
TrafficSource::generate(
    Rng &rng,
    const std::vector<const workload::FunctionSpec *> &pool) const
{
    std::unique_ptr<ArrivalStream> stream;
    {
        DefaultGenerateScope guard;
        stream = open(rng, pool);
    }
    std::vector<Invocation> trace;
    Invocation inv;
    while (stream->next(inv))
        trace.push_back(inv);
    return trace;
}

std::unique_ptr<ArrivalStream>
replayStream(std::vector<Invocation> trace, std::string model)
{
    return std::make_unique<VectorReplayStream>(std::move(trace),
                                                std::move(model));
}

std::uint64_t
deriveArrivalSeed(std::uint64_t scenarioSeed)
{
    // SplitMix64 substream #2 of the scenario seed; deriveFaultSeed
    // (fault_plan.cc) is substream #1, and the cluster's own
    // dispatch-jitter Rng uses the raw seed. Three independent
    // families: lazy arrival pulls can never perturb jitter draws.
    std::uint64_t z = scenarioSeed + 2 * 0x9e3779b97f4a7c15ull;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

} // namespace litmus::cluster
