/**
 * @file
 * Deterministic typed event queue for the cluster's event-driven
 * serving loop.
 *
 * The event core replaces the fixed-epoch march with a per-fleet
 * priority queue of *typed* events on the integer quantum grid: next
 * arrival, next retry due, next fault from the FaultPlan, next
 * keep-alive expiry. Wholly idle machines cost zero between events
 * (no engine call, no barrier) and busy machines fast-forward
 * independently to the next event barrier.
 *
 * Determinism is the design center, not an afterthought. Every event
 * carries a stable composite key
 *
 *     (tick, class, machine, seq)
 *
 * and the queue pops in strictly ascending key order regardless of
 * insertion order or worker-thread count. `tick` is the event's
 * *epoch-barrier estimate* on the integer quantum grid (conservative:
 * the loop decides actual dueness by comparing the event's exact time
 * against the canonical fleet clock, so an estimate that lands one
 * barrier early is harmless — the event simply re-queues). `class`
 * breaks same-tick ties in the fixed order Fault < Arrival < Retry <
 * KeepAlive < Progress, mirroring the epoch loop's
 * harvest/faults/dispatch phase order. `machine` and `seq` pin the
 * remaining ties to the machine index and a monotone sequence number.
 *
 * Keep-alive expiries are *coalesced lazily*: the queue holds at most
 * the earliest pending expiry per arming pass, and the sweep that
 * services it clears every expired container at once (exactly like
 * the epoch path's lazy sweep), so a fleet parking thousands of warm
 * containers does not flood the queue.
 */

#ifndef LITMUS_CLUSTER_EVENT_QUEUE_H
#define LITMUS_CLUSTER_EVENT_QUEUE_H

#include <cstdint>
#include <vector>

#include "common/units.h"

namespace litmus::cluster
{

/**
 * Event classes, in tie-break order at one tick. The numeric order is
 * load-bearing: it reproduces the epoch loop's phase order inside a
 * barrier (faults before dispatch; keep-alive sweeps are lazy and
 * order-neutral; progress barriers only mark "some machine is busy").
 */
enum class EventClass : std::uint8_t
{
    Fault = 0,     ///< next FaultPlan event (crash/restart/slow/blind)
    Arrival = 1,   ///< next trace arrival becomes dispatchable
    Retry = 2,     ///< next queued retry comes due
    KeepAlive = 3, ///< earliest warm-container keep-alive expiry
    Progress = 4,  ///< a live machine still needs epoch barriers
};

/** Human-readable class name (reports, bench JSON keys). */
const char *eventClassName(EventClass cls);

/**
 * One scheduled event. `tick` is the quantum-grid barrier estimate
 * used only for ordering; `time` is the exact event time used for
 * dueness. See the file comment for the key discipline.
 */
struct Event
{
    std::uint64_t tick = 0;
    EventClass cls = EventClass::Progress;
    unsigned machine = 0;
    std::uint64_t seq = 0;
    Seconds time = 0;

    /** Strict-weak ordering on the composite key (ascending). */
    bool before(const Event &other) const
    {
        if (tick != other.tick)
            return tick < other.tick;
        if (cls != other.cls)
            return cls < other.cls;
        if (machine != other.machine)
            return machine < other.machine;
        return seq < other.seq;
    }
};

/**
 * Binary min-heap of events on the composite key. A thin wrapper over
 * std::push_heap/pop_heap rather than std::priority_queue so the loop
 * can peek, clear, and re-arm heads cheaply each iteration.
 */
class EventQueue
{
  public:
    bool empty() const { return heap_.empty(); }
    std::size_t size() const { return heap_.size(); }
    void clear() { heap_.clear(); }

    /** Insert an event (O(log n)). */
    void push(const Event &event);

    /** Smallest-key event; undefined when empty. */
    const Event &peek() const { return heap_.front(); }

    /** Remove and return the smallest-key event (O(log n)). */
    Event pop();

  private:
    std::vector<Event> heap_;
};

} // namespace litmus::cluster

#endif // LITMUS_CLUSTER_EVENT_QUEUE_H
