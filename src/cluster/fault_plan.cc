#include "cluster/fault_plan.h"

#include <algorithm>

#include "common/logging.h"
#include "common/rng.h"
#include "common/strings.h"

namespace litmus::cluster
{

std::string
retryPolicyName(RetryPolicy policy)
{
    switch (policy) {
    case RetryPolicy::Drop:
        return "drop";
    case RetryPolicy::RetryOnce:
        return "retry-once";
    case RetryPolicy::RetryBackoff:
        return "retry-backoff";
    }
    fatal("retryPolicyName: unknown policy");
}

RetryPolicy
retryPolicyByName(const std::string &name)
{
    if (name == "drop" || name == "none")
        return RetryPolicy::Drop;
    if (name == "retry-once" || name == "once")
        return RetryPolicy::RetryOnce;
    if (name == "retry-backoff" || name == "backoff")
        return RetryPolicy::RetryBackoff;
    fatal("retryPolicyByName: unknown retry policy '", name,
          "' (want drop | retry-once | retry-backoff)");
}

std::string
faultBillingName(FaultBilling billing)
{
    switch (billing) {
    case FaultBilling::TenantPays:
        return "tenant-pays";
    case FaultBilling::ProviderAbsorbs:
        return "provider-absorbs";
    }
    fatal("faultBillingName: unknown billing mode");
}

FaultBilling
faultBillingByName(const std::string &name)
{
    if (name == "tenant-pays" || name == "tenant")
        return FaultBilling::TenantPays;
    if (name == "provider-absorbs" || name == "provider")
        return FaultBilling::ProviderAbsorbs;
    fatal("faultBillingByName: unknown fault billing mode '", name,
          "' (want tenant-pays | provider-absorbs)");
}

std::string
faultKindName(FaultKind kind)
{
    switch (kind) {
    case FaultKind::Restart:
        return "restart";
    case FaultKind::SlowEnd:
        return "slow-end";
    case FaultKind::BlindEnd:
        return "blind-end";
    case FaultKind::Crash:
        return "crash";
    case FaultKind::SlowStart:
        return "slow-start";
    case FaultKind::BlindStart:
        return "blind-start";
    }
    fatal("faultKindName: unknown kind");
}

std::vector<ScriptedFault>
parseScriptedFaults(const std::string &key, const std::string &value)
{
    // The CLI packs fault overrides into one comma-separated --faults
    // flag, so scripted lists there use ';'; scenario files may use
    // either.
    std::string normalized = value;
    std::replace(normalized.begin(), normalized.end(), ';', ',');
    std::vector<ScriptedFault> out;
    for (const std::string &piece : splitNonEmpty(normalized, ',')) {
        ScriptedFault fault;
        const auto at = piece.find('@');
        const std::string time = piece.substr(0, at);
        const auto parsedTime = parseDoubleStrict(time);
        if (!parsedTime || *parsedTime < 0)
            fatal("'", key, "': bad fault time '", time, "' in '",
                  piece, "' (want <seconds>[@<machine>])");
        fault.at = *parsedTime;
        if (at != std::string::npos) {
            const std::string machine = piece.substr(at + 1);
            const auto parsedMachine = parseLongStrict(machine);
            if (!parsedMachine || *parsedMachine < 0)
                fatal("'", key, "': bad machine index '", machine,
                      "' in '", piece,
                      "' (want <seconds>[@<machine>])");
            fault.machine = static_cast<unsigned>(*parsedMachine);
        }
        out.push_back(fault);
    }
    return out;
}

bool
FaultSpec::enabled() const
{
    return crashMtbf > 0 || !crashAt.empty() || slowMtbf > 0 ||
           !slowAt.empty() || blindMtbf > 0 || !blindAt.empty();
}

void
FaultSpec::validate() const
{
    if (crashMtbf < 0)
        fatal("fault.crash.mtbf must be >= 0 (0 disables crashes)");
    if ((crashMtbf > 0 || !crashAt.empty()) && restartDelay <= 0)
        fatal("fault.crash.restart must be positive when crashes are "
              "configured — a machine that never restarts can strand "
              "retries forever");
    if (slowMtbf < 0)
        fatal("fault.slow.mtbf must be >= 0 (0 disables slowdowns)");
    if ((slowMtbf > 0 || !slowAt.empty()) && slowDuration <= 0)
        fatal("fault.slow.duration must be positive when slowdown "
              "windows are configured");
    if (slowFactor <= 0 || slowFactor > 1)
        fatal("fault.slow.factor must be in (0, 1], got ", slowFactor);
    if (blindMtbf < 0)
        fatal("fault.blind.mtbf must be >= 0 (0 disables blindness)");
    if ((blindMtbf > 0 || !blindAt.empty()) && blindDuration <= 0)
        fatal("fault.blind.duration must be positive when blindness "
              "windows are configured");
    if (retry == RetryPolicy::RetryBackoff && retryMax < 2)
        fatal("fault.retry.max must be >= 2 under retry-backoff (the "
              "first dispatch counts as an attempt)");
    if (retryBackoff < 0)
        fatal("fault.retry.backoff must be >= 0");
}

std::uint64_t
deriveFaultSeed(const FaultSpec &spec, std::uint64_t scenarioSeed)
{
    if (spec.seed != 0)
        return spec.seed;
    // One SplitMix64 step of the scenario seed: deterministic, but a
    // different stream family than the traffic/jitter Rng, so the
    // fault schedule never consumes (or perturbs) traffic draws.
    std::uint64_t z = scenarioSeed + 0x9e3779b97f4a7c15ull;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

namespace
{

/**
 * Generate one machine's window process: starts separated by an
 * exponential gap of the given mean measured from the previous end,
 * so windows on a machine never overlap themselves.
 */
void
generateWindows(Rng &rng, unsigned machine, Seconds mtbf,
                Seconds duration, FaultKind startKind,
                FaultKind endKind, double factor, Seconds horizon,
                std::vector<FaultEvent> &events)
{
    Seconds at = rng.exponential(mtbf);
    while (at < horizon) {
        events.push_back({at, startKind, machine, factor});
        const Seconds end = at + duration;
        events.push_back({end, endKind, machine, 1.0});
        at = end + rng.exponential(mtbf);
    }
}

} // namespace

FaultPlan
FaultPlan::compile(const FaultSpec &spec, unsigned machines,
                   Seconds horizon, std::uint64_t scenarioSeed)
{
    spec.validate();
    if (machines == 0)
        fatal("FaultPlan: zero machines");
    if (horizon < 0)
        fatal("FaultPlan: negative horizon");

    FaultPlan plan;
    if (!spec.enabled())
        return plan;

    const std::uint64_t seed = deriveFaultSeed(spec, scenarioSeed);
    for (unsigned m = 0; m < machines; ++m) {
        // Three seeds per machine, one per fault class: the Rng seeds
        // through SplitMix64, so adjacent seeds are independent
        // streams, and enabling one class never moves another's
        // timeline.
        if (spec.crashMtbf > 0) {
            Rng rng(seed + 3ull * m);
            // Crashes are measured between failures of a *running*
            // machine, so the next draw starts at the restart.
            generateWindows(rng, m, spec.crashMtbf, spec.restartDelay,
                            FaultKind::Crash, FaultKind::Restart, 1.0,
                            horizon, plan.events_);
        }
        if (spec.slowMtbf > 0) {
            Rng rng(seed + 3ull * m + 1);
            generateWindows(rng, m, spec.slowMtbf, spec.slowDuration,
                            FaultKind::SlowStart, FaultKind::SlowEnd,
                            spec.slowFactor, horizon, plan.events_);
        }
        if (spec.blindMtbf > 0) {
            Rng rng(seed + 3ull * m + 2);
            generateWindows(rng, m, spec.blindMtbf, spec.blindDuration,
                            FaultKind::BlindStart, FaultKind::BlindEnd,
                            1.0, horizon, plan.events_);
        }
    }

    const auto addScripted = [&](const std::vector<ScriptedFault> &list,
                                 const char *key, FaultKind startKind,
                                 FaultKind endKind, Seconds duration,
                                 double factor) {
        for (const ScriptedFault &fault : list) {
            if (fault.machine >= machines)
                fatal("FaultPlan: '", key, "' names machine ",
                      fault.machine, " but the fleet has ", machines,
                      " machines (indices 0..", machines - 1, ")");
            plan.events_.push_back(
                {fault.at, startKind, fault.machine, factor});
            plan.events_.push_back(
                {fault.at + duration, endKind, fault.machine, 1.0});
        }
    };
    addScripted(spec.crashAt, "fault.crash.at", FaultKind::Crash,
                FaultKind::Restart, spec.restartDelay, 1.0);
    addScripted(spec.slowAt, "fault.slow.at", FaultKind::SlowStart,
                FaultKind::SlowEnd, spec.slowDuration,
                spec.slowFactor);
    addScripted(spec.blindAt, "fault.blind.at", FaultKind::BlindStart,
                FaultKind::BlindEnd, spec.blindDuration, 1.0);

    // (time, machine, kind): FaultKind is declared in application
    // order, so a restart at t precedes a new crash at t.
    std::sort(plan.events_.begin(), plan.events_.end(),
              [](const FaultEvent &a, const FaultEvent &b) {
                  if (a.at != b.at)
                      return a.at < b.at;
                  if (a.machine != b.machine)
                      return a.machine < b.machine;
                  return static_cast<int>(a.kind) <
                         static_cast<int>(b.kind);
              });
    return plan;
}

} // namespace litmus::cluster
