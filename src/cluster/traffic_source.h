/**
 * @file
 * The arrival-process interface the cluster consumes.
 *
 * The cluster serves whatever arrival stream it is handed; *how* that
 * stream is produced (Poisson, diurnal, burst, trace replay, custom
 * registrations) is the scenario layer's business. Keeping the
 * interface here — below the scenario layer — inverts that dependency:
 * scenario::TrafficModel derives from cluster::TrafficSource, the
 * cluster never includes scenario headers, and the layer DAG
 * (common -> sim -> workload -> core -> cluster -> scenario) stays
 * acyclic.
 *
 * Arrival generation is pull-based: open() returns an ArrivalStream
 * cursor the serving loop peeks/pulls one arrival at a time, so a
 * day-long million-function trace never has to exist as one resident
 * vector — memory is O(model lookahead), not O(total arrivals).
 * generate() (the seed-era "whole trace up front" call) survives as a
 * default-implemented shim that drains the stream; it is the
 * differential oracle the streaming path is tested against, and the
 * adapter that keeps legacy generate()-only models servable.
 *
 * Determinism: open() derives everything from the caller's Rng
 * (conventionally exactly one fork(), a SplitMix64-derived substream
 * — the same scheme FaultPlan uses), so equal-seeded generators
 * produce bit-identical arrival sequences whether drained eagerly or
 * pulled lazily, at any thread count.
 */

#ifndef LITMUS_CLUSTER_TRAFFIC_SOURCE_H
#define LITMUS_CLUSTER_TRAFFIC_SOURCE_H

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "cluster/dispatcher.h"
#include "common/rng.h"

namespace litmus::cluster
{

/**
 * A pull cursor over one arrival process, valid for one run. The base
 * class owns the stream contract so every model gets it for free:
 * peek()/next() validate that arrivals are nondecreasing and carry a
 * function (fatal() naming the model otherwise), number them
 * seq 0..n-1 in pull order, and track the flow counters the fleet
 * report exposes (generated / pulled / buffered-max). Implementations
 * override produce() only.
 */
class ArrivalStream
{
  public:
    /** @param model the producing model's name (error messages,
     *  report footers). */
    explicit ArrivalStream(std::string model);
    virtual ~ArrivalStream() = default;

    ArrivalStream(const ArrivalStream &) = delete;
    ArrivalStream &operator=(const ArrivalStream &) = delete;

    /** The next arrival without consuming it; nullptr when the
     *  stream is exhausted. May cost one produce() call. */
    const Invocation *peek();

    /** Consume the next arrival into @p out; false at end. */
    bool next(Invocation &out);

    /** Arrivals produced by the model so far (includes a peeked,
     *  not-yet-pulled head). */
    std::uint64_t generated() const { return generated_; }

    /** Arrivals the consumer pulled via next(). */
    std::uint64_t pulled() const { return pulled_; }

    /** Peak arrivals resident in this stream at once: 1 for purely
     *  generative models, one minute-bucket for the azure ingester,
     *  the whole trace for an upfront replay. */
    std::uint64_t bufferedMax() const { return bufferedMax_; }

    /** The producing model's name. */
    const std::string &model() const { return model_; }

    /**
     * Best-effort end-of-arrivals estimate (0 = unknown). A replay
     * stream knows its trace's last timestamp exactly, which is the
     * fallback fault-plan horizon for custom generate()-only models
     * whose TrafficSource::horizonHint() is unknowable.
     */
    virtual Seconds horizonHint() const { return 0; }

  protected:
    /**
     * Produce the next arrival (timestamp + function spec; seq is
     * assigned by the base). Return false at end of stream. Called at
     * most once past the end.
     */
    virtual bool produce(Invocation &out) = 0;

    /** Fold a model-internal lookahead buffer's size into
     *  bufferedMax (the base accounts for its own 1-slot peek). */
    void noteBuffered(std::uint64_t resident);

  private:
    bool fill();

    std::string model_;
    Invocation slot_;
    bool haveSlot_ = false;
    bool done_ = false;
    Seconds lastArrival_ = 0;
    std::uint64_t generated_ = 0;
    std::uint64_t pulled_ = 0;
    std::uint64_t bufferedMax_ = 0;
};

/**
 * One arrival process. Implementations are immutable after
 * construction; a model implements open() (native streaming) or
 * generate() (legacy upfront) — each has a default implemented in
 * terms of the other, and implementing neither is fatal() at first
 * use. Built-in models are native streams.
 */
class TrafficSource
{
  public:
    virtual ~TrafficSource() = default;

    /** Human-readable model name (error messages, registries). */
    virtual std::string name() const = 0;

    /**
     * Open a fresh arrival stream. The stream must capture its own
     * generator derived from @p rng — conventionally exactly one
     * rng.fork() — and never retain a reference to @p rng or @p pool
     * beyond the model's own lifetime (the pool vector is copied or
     * outlives the stream at every call site in-tree). Timestamps
     * nondecreasing from 0 and non-null specs are enforced by the
     * ArrivalStream base.
     *
     * Default: materialize via generate() and replay — the adapter
     * that keeps generate()-only custom models servable (at upfront
     * memory cost).
     */
    virtual std::unique_ptr<ArrivalStream>
    open(Rng &rng,
         const std::vector<const workload::FunctionSpec *> &pool) const;

    /**
     * Generate the full arrival trace: timestamps nondecreasing from
     * 0, seq numbered 0..n-1, every spec non-null (sampled uniformly
     * from @p pool unless the model carries its own function names).
     *
     * Default: drain open() into a vector — bit-identical to pulling
     * the stream lazily, which is exactly what the streaming
     * differential suite asserts.
     */
    virtual std::vector<Invocation>
    generate(Rng &rng,
             const std::vector<const workload::FunctionSpec *> &pool)
        const;

    /**
     * Best-effort end-of-arrivals estimate in simulated seconds
     * (0 = unknown). Streaming retired the materialized trace whose
     * last timestamp used to bound the stochastic fault processes, so
     * FaultPlan::compile takes this hint instead: generative models
     * report their duration (or invocations/rate), replay models
     * their capped span. Only consulted when a stochastic fault
     * campaign (crash/slow/blind MTBF) is configured.
     */
    virtual Seconds horizonHint() const { return 0; }
};

/**
 * A stream replaying an already-materialized trace (upfront A/B mode,
 * the legacy-model adapter, tests). Reports the whole vector as its
 * resident buffer — that is the honest cost of upfront generation.
 */
std::unique_ptr<ArrivalStream>
replayStream(std::vector<Invocation> trace, std::string model);

/**
 * The arrival-stream seed for a scenario seed: SplitMix64 substream
 * #2 of the seed (the fault plan derives #1), so traffic generation,
 * the fault schedule, and the cluster's dispatch-jitter Rng (the raw
 * seed) are three independent stream families — pulling arrivals
 * lazily can never perturb jitter draws, which is what keeps the
 * streaming and upfront paths bit-identical.
 */
std::uint64_t deriveArrivalSeed(std::uint64_t scenarioSeed);

} // namespace litmus::cluster

#endif // LITMUS_CLUSTER_TRAFFIC_SOURCE_H
