/**
 * @file
 * The arrival-process interface the cluster consumes.
 *
 * The cluster serves whatever arrival stream it is handed; *how* that
 * stream is produced (Poisson, diurnal, burst, trace replay, custom
 * registrations) is the scenario layer's business. Keeping the
 * interface here — below the scenario layer — inverts that dependency:
 * scenario::TrafficModel derives from cluster::TrafficSource, the
 * cluster never includes scenario headers, and the layer DAG
 * (common -> sim -> workload -> core -> cluster -> scenario) stays
 * acyclic.
 */

#ifndef LITMUS_CLUSTER_TRAFFIC_SOURCE_H
#define LITMUS_CLUSTER_TRAFFIC_SOURCE_H

#include <string>
#include <vector>

#include "cluster/dispatcher.h"
#include "common/rng.h"

namespace litmus::cluster
{

/**
 * One arrival process. Implementations are immutable after
 * construction; generate() derives everything else from the caller's
 * Rng so repeated calls with equal-seeded generators produce
 * identical traces.
 */
class TrafficSource
{
  public:
    virtual ~TrafficSource() = default;

    /** Human-readable model name (error messages, registries). */
    virtual std::string name() const = 0;

    /**
     * Generate the full arrival trace: timestamps nondecreasing from
     * 0, seq numbered 0..n-1, every spec non-null (sampled uniformly
     * from @p pool unless the model carries its own function names).
     * The cluster fatal()s on a source that violates the contract.
     */
    virtual std::vector<Invocation>
    generate(Rng &rng,
             const std::vector<const workload::FunctionSpec *> &pool)
        const = 0;
};

} // namespace litmus::cluster

#endif // LITMUS_CLUSTER_TRAFFIC_SOURCE_H
