#include "cluster/event_queue.h"

#include <algorithm>

#include "common/logging.h"

namespace litmus::cluster
{

const char *
eventClassName(EventClass cls)
{
    switch (cls) {
    case EventClass::Fault:
        return "fault";
    case EventClass::Arrival:
        return "arrival";
    case EventClass::Retry:
        return "retry";
    case EventClass::KeepAlive:
        return "keepalive";
    case EventClass::Progress:
        return "progress";
    }
    fatal("eventClassName: unknown EventClass ",
          static_cast<unsigned>(cls));
}

namespace
{

/** Heap comparator: std::*_heap builds a max-heap, so invert. */
bool
later(const Event &a, const Event &b)
{
    return b.before(a);
}

} // namespace

void
EventQueue::push(const Event &event)
{
    heap_.push_back(event);
    std::push_heap(heap_.begin(), heap_.end(), later);
}

Event
EventQueue::pop()
{
    if (heap_.empty())
        fatal("EventQueue::pop: queue is empty");
    std::pop_heap(heap_.begin(), heap_.end(), later);
    Event event = heap_.back();
    heap_.pop_back();
    return event;
}

} // namespace litmus::cluster
