#include "cluster/epoch_pool.h"

#include "common/logging.h"

namespace litmus::cluster
{

EpochPool::EpochPool(unsigned threads) : threads_(threads)
{
    if (threads_ == 0)
        fatal("EpochPool: need at least one thread");
    // One thread means inline execution; no workers to park.
    for (unsigned i = 1; i < threads_; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

EpochPool::~EpochPool()
{
    {
        MutexLock lock(&mutex_);
        stop_ = true;
    }
    workReady_.notify_all();
    for (std::thread &worker : workers_)
        worker.join();
}

void
EpochPool::drain(Batch &batch)
{
    for (;;) {
        // relaxed: the counter only hands out disjoint indices; the
        // jobs vector itself was published by the mutex (workerLoop's
        // acquire of batch_) or written by this thread (the caller).
        const std::size_t i =
            batch.next.fetch_add(1, std::memory_order_relaxed);
        if (i >= batch.total)
            return;
        // The jobs vector outlives every in-range claim: run() only
        // returns (and the caller's vector only dies) after pending
        // reaches zero, which needs this job to finish first.
        (*batch.jobs)[i]();
        // release: the job's writes must be visible to whoever
        // observes this decrement. Acquire is not needed here — no
        // thread reads other jobs' results at this point; the barrier
        // read in run() carries the acquire. The RMW keeps this
        // decrement in the release sequence of every earlier one, so
        // run()'s single acquire load of 0 synchronizes with all of
        // them.
        if (batch.pending.fetch_sub(1, std::memory_order_release) == 1) {
            MutexLock lock(&mutex_);
            batchDone_.notify_all();
        }
    }
}

void
EpochPool::run(const std::vector<std::function<void()>> &jobs)
{
    if (jobs.empty())
        return;
    if (workers_.empty() || jobs.size() == 1) {
        for (const auto &job : jobs)
            job();
        return;
    }

    auto batch = std::make_shared<Batch>();
    batch->jobs = &jobs;
    batch->total = jobs.size();
    // relaxed: the batch is published to workers by the mutex_
    // release below; no worker can load pending before that acquire.
    batch->pending.store(jobs.size(), std::memory_order_relaxed);
    {
        MutexLock lock(&mutex_);
        batch_ = batch;
        ++generation_;
    }
    workReady_.notify_all();

    // The caller participates: it drains jobs alongside the workers,
    // so a pool of N threads uses N CPUs, not N - 1.
    drain(*batch);

    // acquire: pairs with every worker's release decrement — seeing
    // pending == 0 makes all job writes visible to the caller, which
    // reads the jobs' results the moment run() returns.
    UniqueLock lock(&mutex_);
    while (batch->pending.load(std::memory_order_acquire) != 0)
        batchDone_.wait(lock.native());
    batch_ = nullptr;
}

void
EpochPool::workerLoop()
{
    std::uint64_t seen = 0;
    for (;;) {
        std::shared_ptr<Batch> batch;
        {
            UniqueLock lock(&mutex_);
            while (!stop_ && generation_ == seen)
                workReady_.wait(lock.native());
            if (stop_)
                return;
            seen = generation_;
            batch = batch_;
        }
        // The batch may already be finished and detached (we woke
        // late); the shared_ptr keeps the claim counters valid and
        // drain() then exits without touching the jobs vector.
        if (batch)
            drain(*batch);
    }
}

} // namespace litmus::cluster
