#include "cluster/epoch_pool.h"

#include "common/logging.h"

namespace litmus::cluster
{

EpochPool::EpochPool(unsigned threads) : threads_(threads)
{
    if (threads_ == 0)
        fatal("EpochPool: need at least one thread");
    // One thread means inline execution; no workers to park.
    for (unsigned i = 1; i < threads_; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

EpochPool::~EpochPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stop_ = true;
    }
    workReady_.notify_all();
    for (std::thread &worker : workers_)
        worker.join();
}

void
EpochPool::drain(Batch &batch)
{
    for (;;) {
        const std::size_t i =
            batch.next.fetch_add(1, std::memory_order_relaxed);
        if (i >= batch.total)
            return;
        // The jobs vector outlives every in-range claim: run() only
        // returns (and the caller's vector only dies) after pending
        // reaches zero, which needs this job to finish first.
        (*batch.jobs)[i]();
        if (batch.pending.fetch_sub(1, std::memory_order_acq_rel) == 1) {
            std::lock_guard<std::mutex> lock(mutex_);
            batchDone_.notify_all();
        }
    }
}

void
EpochPool::run(const std::vector<std::function<void()>> &jobs)
{
    if (jobs.empty())
        return;
    if (workers_.empty() || jobs.size() == 1) {
        for (const auto &job : jobs)
            job();
        return;
    }

    auto batch = std::make_shared<Batch>();
    batch->jobs = &jobs;
    batch->total = jobs.size();
    batch->pending.store(jobs.size(), std::memory_order_relaxed);
    {
        std::lock_guard<std::mutex> lock(mutex_);
        batch_ = batch;
        ++generation_;
    }
    workReady_.notify_all();

    // The caller participates: it drains jobs alongside the workers,
    // so a pool of N threads uses N CPUs, not N - 1.
    drain(*batch);

    std::unique_lock<std::mutex> lock(mutex_);
    batchDone_.wait(lock, [&batch] {
        return batch->pending.load(std::memory_order_acquire) == 0;
    });
    batch_ = nullptr;
}

void
EpochPool::workerLoop()
{
    std::uint64_t seen = 0;
    for (;;) {
        std::shared_ptr<Batch> batch;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            workReady_.wait(lock, [this, seen] {
                return stop_ || generation_ != seen;
            });
            if (stop_)
                return;
            seen = generation_;
            batch = batch_;
        }
        // The batch may already be finished and detached (we woke
        // late); the shared_ptr keeps the claim counters valid and
        // drain() then exits without touching the jobs vector.
        if (batch)
            drain(*batch);
    }
}

} // namespace litmus::cluster
