#include "scenario/scenario_runner.h"

#include <algorithm>
#include <ostream>

#include "common/logging.h"
#include "common/text_table.h"
#include "core/table_io.h"
#include "sim/machine_catalog.h"

namespace litmus::scenario
{

namespace
{

/** Output path for one type's profile: the plain path for a
 *  single-type fleet, "<stem>-<type><ext>" when several types are
 *  being written. */
std::string
profileOutPath(const std::string &path, const std::string &type,
               bool multiple)
{
    if (!multiple)
        return path;
    const auto slash = path.find_last_of('/');
    const auto dot = path.find_last_of('.');
    if (dot == std::string::npos ||
        (slash != std::string::npos && dot < slash))
        return path + "-" + type;
    return path.substr(0, dot) + "-" + type + path.substr(dot);
}

} // namespace

ScenarioRunner::ScenarioRunner(ScenarioSpec spec)
    : spec_(std::move(spec))
{
    spec_.validate();
    pool_ = spec_.functionPool();
    traffic_ = makeTrafficModel(spec_.traffic);
    bindPricing();

    cfg_.fleet = spec_.fleet;
    cfg_.policy = spec_.policy;
    cfg_.arrivalsPerSecond = spec_.traffic.arrivalsPerSecond;
    cfg_.invocations = spec_.traffic.invocations;
    cfg_.functionPool = pool_;
    cfg_.seed = spec_.seed;
    cfg_.epoch = spec_.epoch;
    cfg_.keepAlive = spec_.keepAlive;
    cfg_.threads = spec_.threads;
    cfg_.scheduler = spec_.scheduler;
    cfg_.exactQuantum = spec_.exactQuantum;
    cfg_.drainCap = spec_.drainCap;
    cfg_.upfrontArrivals = spec_.upfrontArrivals;
    cfg_.sharingFactor = spec_.sharingFactor;
    cfg_.probes = spec_.probes.value_or(!cfg_.discountModels.empty());
    cfg_.traffic = traffic_.get();
    cfg_.faults = spec_.fault;
    cfg_.validate();
}

ScenarioRunner::~ScenarioRunner() = default;

void
ScenarioRunner::bindPricing()
{
    const auto bind = [this](pricing::ProfileStore::ProfilePtr profile) {
        if (profile->machine.empty())
            fatal("scenario: profile has no machine name (legacy v1 "
                  "artifact?) — recalibrate to produce a v2 profile");
        if (cfg_.discountModels.contains(profile->machine))
            fatal("scenario: two profiles for machine type '",
                  profile->machine, "' — pass one per type");
        models_.push_back(
            std::make_unique<pricing::DiscountModel>(*profile));
        cfg_.discountModels[profile->machine] = models_.back().get();
        profiles_.push_back(std::move(profile));
    };

    for (const std::string &path : spec_.tables)
        bind(std::make_shared<const pricing::CalibrationProfile>(
            pricing::loadProfile(path)));

    if (spec_.calibrate) {
        for (const cluster::MachineGroup &group : spec_.fleet) {
            const std::string type =
                sim::MachineCatalog::get(group.machine).name;
            if (cfg_.discountModels.contains(type))
                continue; // a loaded profile wins
            if (spec_.calibrationLevels == 0) {
                if (!pricing::ProfileStore::instance().find(
                        "dedicated/" + type))
                    inform("scenario: calibrating ", type,
                           " (dedicated sweep)...");
                bind(pricing::ProfileStore::instance().dedicated(type));
                continue;
            }
            // Capped sweeps are memoized under their own key so a
            // coarse smoke run never poisons the full-depth cache.
            const unsigned cap = std::max(2u, spec_.calibrationLevels);
            const std::string key =
                "scenario/" + type + "/levels" + std::to_string(cap);
            if (!pricing::ProfileStore::instance().find(key))
                inform("scenario: calibrating ", type, " (<= ", cap,
                       " levels per generator)...");
            bind(pricing::ProfileStore::instance().getOrCalibrate(
                key, [&type, cap] {
                    auto ccfg = pricing::dedicatedCalibrationFor(
                        sim::MachineCatalog::get(type));
                    if (ccfg.levels.size() > cap)
                        ccfg.levels.resize(cap);
                    return pricing::calibrate(ccfg);
                }));
        }
    }

    if (!spec_.tablesOut.empty()) {
        if (profiles_.empty())
            fatal("scenario: tables_out needs profiles to write — "
                  "set calibrate=true or tables=");
        for (const auto &profile : profiles_) {
            const std::string out =
                profileOutPath(spec_.tablesOut, profile->machine,
                               profiles_.size() > 1);
            pricing::saveProfile(out, *profile);
            inform("scenario: profile for ", profile->machine,
                   " written to ", out);
        }
    }
}

const cluster::FleetReport &
ScenarioRunner::run()
{
    if (cluster_)
        fatal("ScenarioRunner::run called twice");
    cluster_ = std::make_unique<cluster::Cluster>(cfg_);
    return cluster_->run();
}

const cluster::Cluster &
ScenarioRunner::cluster() const
{
    if (!cluster_)
        fatal("ScenarioRunner::cluster: run() has not completed");
    return *cluster_;
}

void
printFleetReport(std::ostream &os, const cluster::FleetReport &report)
{
    TextTable table({"machine", "type", "dispatched", "cold", "warm",
                     "billed s", "commercial $", "litmus $",
                     "mean lat ms"});
    for (const cluster::MachineReport &m : report.machines) {
        table.addRow({std::to_string(m.index), m.type,
                      std::to_string(m.dispatched),
                      std::to_string(m.coldStarts),
                      std::to_string(m.warmStarts),
                      TextTable::num(m.billedCpuSeconds),
                      TextTable::num(m.commercialUsd, 6),
                      TextTable::num(m.litmusUsd, 6),
                      TextTable::num(1e3 * m.meanLatency)});
    }
    for (const cluster::TypeReport &t : report.types) {
        table.addRow({"type", t.type, std::to_string(t.dispatched),
                      std::to_string(t.coldStarts),
                      std::to_string(t.warmStarts),
                      TextTable::num(t.billedCpuSeconds),
                      TextTable::num(t.commercialUsd, 6),
                      TextTable::num(t.litmusUsd, 6),
                      TextTable::num(100 * t.discount(), 1) +
                          "% disc"});
    }
    table.addRow({"fleet", "", std::to_string(report.dispatched),
                  std::to_string(report.coldStarts),
                  std::to_string(report.warmStarts),
                  TextTable::num(report.billedCpuSeconds),
                  TextTable::num(report.commercialUsd, 6),
                  TextTable::num(report.litmusUsd, 6),
                  TextTable::num(1e3 * report.meanLatency)});
    table.print(os);

    os << "throughput " << TextTable::num(report.throughput(), 0)
       << " inv/s  cold-start rate "
       << TextTable::num(100 * report.coldStartRate(), 1)
       << "%  fleet discount "
       << TextTable::num(100 * report.discount(), 1) << "%  makespan "
       << TextTable::num(report.makespan) << " s  rejected "
       << report.rejectedMemory << "\n";

    // The chaos footer only appears when a fault campaign ran.
    if (report.crashes > 0 || report.killedInvocations > 0) {
        os << "crashes " << report.crashes << "  killed "
           << report.killedInvocations << "  retried "
           << report.retries << "  abandoned " << report.abandoned
           << "  lost " << TextTable::num(report.lostCpuSeconds)
           << " s  absorbed "
           << TextTable::num(report.absorbedCpuSeconds) << " s ($"
           << TextTable::num(report.absorbedUsd, 6) << ")\n";
    }

    // Scheduler-core footer: how the serving loop spent its barriers.
    // Diagnostic only — never part of the bit-identity contract.
    const cluster::SchedulerCounters &sched = report.sched;
    os << "scheduler " << sched.scheduler << "  barriers "
       << sched.barriers << " (elided " << sched.barriersElided
       << ")  idle quanta skipped " << sched.idleQuantaSkipped
       << "  events arrival " << sched.eventsArrival << " retry "
       << sched.eventsRetry << " fault " << sched.eventsFault
       << " keepalive " << sched.eventsKeepAlive << " progress "
       << sched.eventsProgress << "\n";

    // Arrival-flow footer: how the traffic source fed the fleet.
    // Diagnostic only — never part of the bit-identity contract.
    const cluster::ArrivalCounters &flow = report.arrivalFlow;
    os << "arrivals " << flow.model << " (" << flow.mode
       << ")  generated " << flow.generated << "  pulled "
       << flow.pulled << "  buffered max " << flow.bufferedMax
       << "\n";
}

} // namespace litmus::scenario
