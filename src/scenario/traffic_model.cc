#include "scenario/traffic_model.h"

#include <cmath>
#include <cstdlib>
#include <fstream>
#include <map>

#include "common/logging.h"
#include "common/mutex.h"
#include "workload/suite.h"

namespace litmus::scenario
{

namespace
{

constexpr double kPi = 3.14159265358979323846;

/** Shared stop rule: a model emits arrivals until the invocation
 *  count (when set) or the duration (when set) is exhausted. */
bool
wantMore(const TrafficSpec &spec, std::uint64_t count, Seconds at)
{
    if (spec.invocations > 0 && count >= spec.invocations)
        return false;
    if (spec.duration > 0 && at >= spec.duration)
        return false;
    return true;
}

/** Append one arrival, sampling the pool for its function. */
void
emit(std::vector<cluster::Invocation> &out, Seconds at, Rng &rng,
     const std::vector<const workload::FunctionSpec *> &pool)
{
    cluster::Invocation inv;
    inv.spec = pool[rng.below(pool.size())];
    inv.arrival = at;
    inv.seq = out.size();
    out.push_back(inv);
}

/**
 * The legacy open-loop source. The draw order (exponential gap, then
 * uniform function index) replicates the cluster's old inline
 * generator exactly, so a poisson scenario at seed S is bit-identical
 * to the pre-scenario fleet at seed S.
 */
class PoissonTraffic final : public TrafficModel
{
  public:
    explicit PoissonTraffic(TrafficSpec spec) : spec_(std::move(spec)) {}

    std::string name() const override { return "poisson"; }

    std::vector<cluster::Invocation>
    generate(Rng &rng,
             const std::vector<const workload::FunctionSpec *> &pool)
        const override
    {
        std::vector<cluster::Invocation> out;
        out.reserve(spec_.invocations);
        Seconds at = 0;
        // Count-limited runs execute exactly the legacy loop: one
        // exponential gap plus one uniform pool index per arrival.
        while (spec_.invocations == 0 ||
               out.size() < spec_.invocations) {
            at += rng.exponential(1.0 / spec_.arrivalsPerSecond);
            if (spec_.duration > 0 && at >= spec_.duration)
                break;
            emit(out, at, rng, pool);
        }
        return out;
    }

  private:
    TrafficSpec spec_;
};

/**
 * Sinusoid-modulated rate, sampled by Lewis-Shedler thinning: draw
 * candidates from a homogeneous process at the peak rate and accept
 * each with probability rate(t)/peak. Exact for any bounded rate
 * function, and deterministic for a fixed Rng.
 */
class DiurnalTraffic final : public TrafficModel
{
  public:
    explicit DiurnalTraffic(TrafficSpec spec) : spec_(std::move(spec)) {}

    std::string name() const override { return "diurnal"; }

    double rateAt(Seconds t) const
    {
        return spec_.arrivalsPerSecond *
               (1.0 + spec_.diurnalAmplitude *
                          std::sin(2.0 * kPi *
                                   (t / spec_.diurnalPeriod +
                                    spec_.diurnalPhase)));
    }

    std::vector<cluster::Invocation>
    generate(Rng &rng,
             const std::vector<const workload::FunctionSpec *> &pool)
        const override
    {
        const double peak =
            spec_.arrivalsPerSecond * (1.0 + spec_.diurnalAmplitude);
        std::vector<cluster::Invocation> out;
        out.reserve(spec_.invocations);
        Seconds at = 0;
        while (wantMore(spec_, out.size(), at)) {
            at += rng.exponential(1.0 / peak);
            if (!wantMore(spec_, out.size(), at))
                break;
            if (rng.uniform() * peak <= rateAt(at))
                emit(out, at, rng, pool);
        }
        return out;
    }

  private:
    TrafficSpec spec_;
};

/**
 * Two-state on/off MMPP. Holding times are exponential (mean burstOn
 * / burstOff); arrivals are Poisson at rateOn while on and rateOff
 * while off, with rateOn solved so the long-run mean rate equals
 * arrivalsPerSecond. Candidates falling past the state boundary are
 * discarded — valid because the Poisson process is memoryless.
 */
class BurstTraffic final : public TrafficModel
{
  public:
    explicit BurstTraffic(TrafficSpec spec) : spec_(std::move(spec))
    {
        rateOff_ = spec_.burstIdleFraction * spec_.arrivalsPerSecond;
        const Seconds cycle = spec_.burstOn + spec_.burstOff;
        rateOn_ = (spec_.arrivalsPerSecond * cycle -
                   rateOff_ * spec_.burstOff) /
                  spec_.burstOn;
    }

    std::string name() const override { return "burst"; }

    double onRate() const { return rateOn_; }
    double offRate() const { return rateOff_; }

    std::vector<cluster::Invocation>
    generate(Rng &rng,
             const std::vector<const workload::FunctionSpec *> &pool)
        const override
    {
        std::vector<cluster::Invocation> out;
        out.reserve(spec_.invocations);
        bool on = true;
        Seconds at = 0;
        Seconds stateEnd = rng.exponential(spec_.burstOn);
        while (wantMore(spec_, out.size(), at)) {
            const double rate = on ? rateOn_ : rateOff_;
            Seconds candidate = stateEnd;
            if (rate > 0)
                candidate = at + rng.exponential(1.0 / rate);
            if (candidate >= stateEnd) {
                at = stateEnd;
                on = !on;
                stateEnd = at + rng.exponential(on ? spec_.burstOn
                                                   : spec_.burstOff);
                continue;
            }
            at = candidate;
            if (spec_.duration > 0 && at >= spec_.duration)
                break;
            emit(out, at, rng, pool);
        }
        return out;
    }

  private:
    TrafficSpec spec_;
    double rateOn_ = 0;
    double rateOff_ = 0;
};

/**
 * CSV replay. Rows are parsed and validated at construction (so a
 * malformed trace fails when the scenario is built, not mid-run);
 * generate() applies the rate rescale and the row/duration caps, and
 * samples the pool for rows without a function name.
 */
class TraceTraffic final : public TrafficModel
{
  public:
    explicit TraceTraffic(TrafficSpec spec)
        : spec_(std::move(spec)), rows_(loadArrivalTrace(spec_.tracePath))
    {
        if (rows_.empty())
            fatal("traffic trace '", spec_.tracePath,
                  "' contains no arrivals");
    }

    std::string name() const override { return "trace"; }

    std::size_t rowCount() const { return rows_.size(); }

    std::vector<cluster::Invocation>
    generate(Rng &rng,
             const std::vector<const workload::FunctionSpec *> &pool)
        const override
    {
        std::vector<cluster::Invocation> out;
        out.reserve(rows_.size());
        for (const TraceRow &row : rows_) {
            const Seconds at = row.arrival / spec_.traceRateScale;
            if (spec_.invocations > 0 &&
                out.size() >= spec_.invocations) {
                // A cap that bites is worth a notice: a silently
                // truncated replay reads as "covered the trace".
                warn("trace '", spec_.tracePath, "': replay capped "
                     "at ", out.size(), " of ", rows_.size(),
                     " rows (invocations=", spec_.invocations, ")");
                break;
            }
            if (spec_.duration > 0 && at >= spec_.duration)
                break;
            cluster::Invocation inv;
            inv.spec = row.spec ? row.spec
                                : pool[rng.below(pool.size())];
            inv.arrival = at;
            inv.seq = out.size();
            out.push_back(inv);
        }
        return out;
    }

  private:
    TrafficSpec spec_;
    std::vector<TraceRow> rows_;
};

struct Registry
{
    Mutex mutex;
    std::map<std::string, TrafficModelFactory> factories
        LITMUS_GUARDED_BY(mutex);

    Registry()
    {
        // Construction is single-threaded (function-local static);
        // the lock is uncontended and keeps the guarded writes
        // visible to the thread-safety analysis without suppressions.
        MutexLock lock(&mutex);
        factories["poisson"] = [](const TrafficSpec &spec) {
            return std::make_unique<PoissonTraffic>(spec);
        };
        factories["diurnal"] = [](const TrafficSpec &spec) {
            return std::make_unique<DiurnalTraffic>(spec);
        };
        factories["burst"] = [](const TrafficSpec &spec) {
            return std::make_unique<BurstTraffic>(spec);
        };
        factories["trace"] = [](const TrafficSpec &spec) {
            return std::make_unique<TraceTraffic>(spec);
        };
    }
};

Registry &
registry()
{
    static Registry reg;
    return reg;
}

} // namespace

void
TrafficSpec::validate() const
{
    if (model.empty())
        fatal("TrafficSpec: empty model name");
    if (invocations == 0 && duration <= 0 && model != "trace")
        fatal("TrafficSpec: need a stop condition — set invocations "
              "or duration");
    // Non-finite knobs are poison, not extremes: an infinite
    // duration generates arrivals until memory runs out, and NaN is
    // false in every stop/ordering comparison.
    if (!std::isfinite(duration) || duration < 0)
        fatal("TrafficSpec: duration must be finite and >= 0, got ",
              duration);
    if (model != "trace" &&
        (arrivalsPerSecond <= 0 || !std::isfinite(arrivalsPerSecond)))
        fatal("TrafficSpec: arrival rate must be positive and "
              "finite");
    if (diurnalPeriod <= 0 || !std::isfinite(diurnalPeriod))
        fatal("TrafficSpec: diurnal.period must be positive and "
              "finite");
    if (diurnalAmplitude < 0 || diurnalAmplitude > 1)
        fatal("TrafficSpec: diurnal.amplitude must be in [0, 1], got ",
              diurnalAmplitude);
    if (diurnalPhase < 0 || diurnalPhase >= 1)
        fatal("TrafficSpec: diurnal.phase must be in [0, 1), got ",
              diurnalPhase);
    if (burstOn <= 0 || burstOff <= 0 || !std::isfinite(burstOn) ||
        !std::isfinite(burstOff))
        fatal("TrafficSpec: burst.on and burst.off must be positive "
              "and finite");
    if (burstIdleFraction < 0 || burstIdleFraction > 1)
        fatal("TrafficSpec: burst.idle_fraction must be in [0, 1], "
              "got ", burstIdleFraction);
    if (model == "trace" && tracePath.empty())
        fatal("TrafficSpec: trace model needs trace.path");
    if (traceRateScale <= 0 || !std::isfinite(traceRateScale))
        fatal("TrafficSpec: trace.rate_scale must be positive and "
              "finite");
}

void
registerTrafficModel(const std::string &name, TrafficModelFactory factory)
{
    if (!factory)
        fatal("registerTrafficModel: null factory for '", name, "'");
    Registry &reg = registry();
    MutexLock lock(&reg.mutex);
    if (!reg.factories.emplace(name, std::move(factory)).second)
        fatal("registerTrafficModel: '", name, "' already registered");
}

std::unique_ptr<TrafficModel>
makeTrafficModel(const TrafficSpec &spec)
{
    spec.validate();
    Registry &reg = registry();
    TrafficModelFactory factory;
    {
        MutexLock lock(&reg.mutex);
        const auto it = reg.factories.find(spec.model);
        if (it != reg.factories.end())
            factory = it->second;
    }
    if (!factory) {
        std::string known;
        for (const std::string &name : trafficModelNames())
            known += (known.empty() ? "" : ", ") + name;
        fatal("unknown traffic model '", spec.model, "' (known: ",
              known, ")");
    }
    return factory(spec);
}

std::vector<std::string>
trafficModelNames()
{
    Registry &reg = registry();
    MutexLock lock(&reg.mutex);
    std::vector<std::string> names;
    names.reserve(reg.factories.size());
    for (const auto &[name, factory] : reg.factories)
        names.push_back(name);
    return names;
}

std::vector<TraceRow>
loadArrivalTrace(const std::string &path)
{
    std::ifstream file(path);
    if (!file)
        fatal("cannot read arrival trace '", path, "'");

    std::vector<TraceRow> rows;
    std::string line;
    unsigned lineNo = 0;
    Seconds prev = 0;
    // One leading non-numeric row (after any comments) is tolerated
    // as the column header.
    bool headerAllowed = true;
    while (std::getline(file, line)) {
        ++lineNo;
        // Strip comments and surrounding whitespace.
        const auto hash = line.find('#');
        if (hash != std::string::npos)
            line = line.substr(0, hash);
        const auto first = line.find_first_not_of(" \t\r");
        if (first == std::string::npos)
            continue;
        const auto last = line.find_last_not_of(" \t\r");
        line = line.substr(first, last - first + 1);

        std::string stamp = line;
        std::string function;
        const auto comma = line.find(',');
        if (comma != std::string::npos) {
            stamp = line.substr(0, comma);
            const auto stampEnd = stamp.find_last_not_of(" \t");
            stamp = stampEnd == std::string::npos
                        ? ""
                        : stamp.substr(0, stampEnd + 1);
            function = line.substr(comma + 1);
            const auto fnFirst = function.find_first_not_of(" \t");
            function = fnFirst == std::string::npos
                           ? ""
                           : function.substr(
                                 fnFirst, function.find_last_not_of(
                                              " \t") - fnFirst + 1);
        }

        char *end = nullptr;
        // LITMUS-LINT-ALLOW(raw-parse): header detection needs strtod's partial-consumption position (consumed-nothing = header row), which parseDoubleStrict hides; the full-consumption + isfinite checks below are exactly the strict contract
        const double at = std::strtod(stamp.c_str(), &end);
        // strtod happily parses "nan"/"inf", and NaN slips past
        // every ordering comparison below — reject non-finite
        // timestamps as malformed.
        if (!end || *end != '\0' || stamp.empty() ||
            !std::isfinite(at)) {
            // The header row is one where the timestamp field is not
            // numeric at all; anything strtod makes partial sense of
            // ("nan", "0.5s") is a malformed data row, even first.
            if (headerAllowed && !stamp.empty() &&
                end == stamp.c_str()) {
                headerAllowed = false;
                continue;
            }
            fatal("trace '", path, "' line ", lineNo,
                  ": bad arrival timestamp '", stamp, "'");
        }
        headerAllowed = false;
        if (at < 0)
            fatal("trace '", path, "' line ", lineNo,
                  ": negative arrival time ", at);
        if (at < prev)
            fatal("trace '", path, "' line ", lineNo,
                  ": arrivals out of order (", at, " after ", prev,
                  ")");
        prev = at;

        TraceRow row;
        row.arrival = at;
        // An unknown function name fatal()s with the suite listing.
        if (!function.empty())
            row.spec = &workload::functionByName(function);
        rows.push_back(row);
    }
    return rows;
}

} // namespace litmus::scenario
