#include "scenario/traffic_model.h"

#include <cmath>
#include <cstdlib>
#include <fstream>
#include <map>
#include <utility>

#include "common/logging.h"
#include "common/mutex.h"
#include "scenario/azure_trace.h"
#include "workload/suite.h"

namespace litmus::scenario
{

namespace
{

constexpr double kPi = 3.14159265358979323846;

/** Shared stop rule: a model emits arrivals until the invocation
 *  count (when set) or the duration (when set) is exhausted. */
bool
wantMore(const TrafficSpec &spec, std::uint64_t count, Seconds at)
{
    if (spec.invocations > 0 && count >= spec.invocations)
        return false;
    if (spec.duration > 0 && at >= spec.duration)
        return false;
    return true;
}

/**
 * Expected end-of-arrivals for the generative models' horizonHint():
 * the configured duration, the expected span of the configured count
 * at the long-run mean rate, or whichever of the two limits bites
 * first when both are set. An estimate (the realized last arrival is
 * random), but identical between streaming and upfront consumption —
 * which is what the fault-plan horizon needs.
 */
Seconds
expectedSpan(const TrafficSpec &spec)
{
    const Seconds byCount =
        spec.invocations > 0 ? static_cast<double>(spec.invocations) /
                                   spec.arrivalsPerSecond
                             : 0;
    if (spec.duration > 0 && byCount > 0)
        return std::min(spec.duration, byCount);
    return spec.duration > 0 ? spec.duration : byCount;
}

/**
 * The legacy open-loop source. The per-arrival draw order
 * (exponential gap, then uniform function index) from one fork() of
 * the arrival Rng replicates the cluster's inline generator exactly,
 * so a poisson scenario at seed S is bit-identical to the built-in
 * fleet source at seed S.
 */
class PoissonStream final : public cluster::ArrivalStream
{
  public:
    PoissonStream(const TrafficSpec &spec, Rng &rng,
                  const std::vector<const workload::FunctionSpec *> &pool)
        : ArrivalStream("poisson"), spec_(spec), rng_(rng.fork()),
          pool_(pool)
    {
    }

  protected:
    bool produce(cluster::Invocation &out) override
    {
        if (spec_.invocations > 0 && emitted_ >= spec_.invocations)
            return false;
        at_ += rng_.exponential(1.0 / spec_.arrivalsPerSecond);
        if (spec_.duration > 0 && at_ >= spec_.duration)
            return false;
        out.arrival = at_;
        out.spec = pool_[rng_.below(pool_.size())];
        ++emitted_;
        return true;
    }

  private:
    TrafficSpec spec_;
    Rng rng_;
    std::vector<const workload::FunctionSpec *> pool_;
    Seconds at_ = 0;
    std::uint64_t emitted_ = 0;
};

class PoissonTraffic final : public TrafficModel
{
  public:
    explicit PoissonTraffic(TrafficSpec spec) : spec_(std::move(spec)) {}

    std::string name() const override { return "poisson"; }

    std::unique_ptr<cluster::ArrivalStream>
    open(Rng &rng,
         const std::vector<const workload::FunctionSpec *> &pool)
        const override
    {
        return std::make_unique<PoissonStream>(spec_, rng, pool);
    }

    Seconds horizonHint() const override { return expectedSpan(spec_); }

  private:
    TrafficSpec spec_;
};

/**
 * Sinusoid-modulated rate, sampled by Lewis-Shedler thinning: draw
 * candidates from a homogeneous process at the peak rate and accept
 * each with probability rate(t)/peak. Exact for any bounded rate
 * function, and deterministic for a fixed Rng — one produce() call
 * loops over rejected candidates, so the draw sequence is identical
 * to the materialized era's single loop.
 */
class DiurnalStream final : public cluster::ArrivalStream
{
  public:
    DiurnalStream(const TrafficSpec &spec, double peak, Rng &rng,
                  const std::vector<const workload::FunctionSpec *> &pool)
        : ArrivalStream("diurnal"), spec_(spec), peak_(peak),
          rng_(rng.fork()), pool_(pool)
    {
    }

  protected:
    bool produce(cluster::Invocation &out) override
    {
        while (wantMore(spec_, emitted_, at_)) {
            at_ += rng_.exponential(1.0 / peak_);
            if (!wantMore(spec_, emitted_, at_))
                return false;
            if (rng_.uniform() * peak_ <= rateAt(at_)) {
                out.arrival = at_;
                out.spec = pool_[rng_.below(pool_.size())];
                ++emitted_;
                return true;
            }
        }
        return false;
    }

  private:
    double rateAt(Seconds t) const
    {
        return spec_.arrivalsPerSecond *
               (1.0 + spec_.diurnalAmplitude *
                          std::sin(2.0 * kPi *
                                   (t / spec_.diurnalPeriod +
                                    spec_.diurnalPhase)));
    }

    TrafficSpec spec_;
    double peak_;
    Rng rng_;
    std::vector<const workload::FunctionSpec *> pool_;
    Seconds at_ = 0;
    std::uint64_t emitted_ = 0;
};

class DiurnalTraffic final : public TrafficModel
{
  public:
    explicit DiurnalTraffic(TrafficSpec spec) : spec_(std::move(spec)) {}

    std::string name() const override { return "diurnal"; }

    double rateAt(Seconds t) const
    {
        return spec_.arrivalsPerSecond *
               (1.0 + spec_.diurnalAmplitude *
                          std::sin(2.0 * kPi *
                                   (t / spec_.diurnalPeriod +
                                    spec_.diurnalPhase)));
    }

    std::unique_ptr<cluster::ArrivalStream>
    open(Rng &rng,
         const std::vector<const workload::FunctionSpec *> &pool)
        const override
    {
        const double peak =
            spec_.arrivalsPerSecond * (1.0 + spec_.diurnalAmplitude);
        return std::make_unique<DiurnalStream>(spec_, peak, rng, pool);
    }

    Seconds horizonHint() const override { return expectedSpan(spec_); }

  private:
    TrafficSpec spec_;
};

/**
 * Two-state on/off MMPP. Holding times are exponential (mean burstOn
 * / burstOff); arrivals are Poisson at rateOn while on and rateOff
 * while off, with rateOn solved so the long-run mean rate equals
 * arrivalsPerSecond. Candidates falling past the state boundary are
 * discarded — valid because the Poisson process is memoryless. The
 * initial on-state holding time is drawn at open(), before any
 * arrival, exactly as the materialized generator drew it before its
 * loop.
 */
class BurstStream final : public cluster::ArrivalStream
{
  public:
    BurstStream(const TrafficSpec &spec, double rateOn, double rateOff,
                Rng &rng,
                const std::vector<const workload::FunctionSpec *> &pool)
        : ArrivalStream("burst"), spec_(spec), rateOn_(rateOn),
          rateOff_(rateOff), rng_(rng.fork()), pool_(pool)
    {
        stateEnd_ = rng_.exponential(spec_.burstOn);
    }

  protected:
    bool produce(cluster::Invocation &out) override
    {
        while (wantMore(spec_, emitted_, at_)) {
            const double rate = on_ ? rateOn_ : rateOff_;
            Seconds candidate = stateEnd_;
            if (rate > 0)
                candidate = at_ + rng_.exponential(1.0 / rate);
            if (candidate >= stateEnd_) {
                at_ = stateEnd_;
                on_ = !on_;
                stateEnd_ = at_ + rng_.exponential(on_ ? spec_.burstOn
                                                       : spec_.burstOff);
                continue;
            }
            at_ = candidate;
            if (spec_.duration > 0 && at_ >= spec_.duration)
                return false;
            out.arrival = at_;
            out.spec = pool_[rng_.below(pool_.size())];
            ++emitted_;
            return true;
        }
        return false;
    }

  private:
    TrafficSpec spec_;
    double rateOn_;
    double rateOff_;
    Rng rng_;
    std::vector<const workload::FunctionSpec *> pool_;
    bool on_ = true;
    Seconds at_ = 0;
    Seconds stateEnd_ = 0;
    std::uint64_t emitted_ = 0;
};

class BurstTraffic final : public TrafficModel
{
  public:
    explicit BurstTraffic(TrafficSpec spec) : spec_(std::move(spec))
    {
        rateOff_ = spec_.burstIdleFraction * spec_.arrivalsPerSecond;
        const Seconds cycle = spec_.burstOn + spec_.burstOff;
        rateOn_ = (spec_.arrivalsPerSecond * cycle -
                   rateOff_ * spec_.burstOff) /
                  spec_.burstOn;
    }

    std::string name() const override { return "burst"; }

    double onRate() const { return rateOn_; }
    double offRate() const { return rateOff_; }

    std::unique_ptr<cluster::ArrivalStream>
    open(Rng &rng,
         const std::vector<const workload::FunctionSpec *> &pool)
        const override
    {
        return std::make_unique<BurstStream>(spec_, rateOn_, rateOff_,
                                             rng, pool);
    }

    Seconds horizonHint() const override { return expectedSpan(spec_); }

  private:
    TrafficSpec spec_;
    double rateOn_ = 0;
    double rateOff_ = 0;
};

/**
 * CSV replay as an incremental stream: each opened stream runs its
 * own TraceCsvReader, emitting one rescaled row per pull and sampling
 * the pool for rows without a function name — the file is never
 * resident. The row/duration caps apply during the read, so a capped
 * replay of a huge file stops parsing at the cap.
 */
class TraceStream final : public cluster::ArrivalStream
{
  public:
    TraceStream(const TrafficSpec &spec, Rng &rng,
                const std::vector<const workload::FunctionSpec *> &pool)
        : ArrivalStream("trace"), spec_(spec), rng_(rng.fork()),
          pool_(pool), reader_(spec_.tracePath)
    {
    }

  protected:
    bool produce(cluster::Invocation &out) override
    {
        if (spec_.invocations > 0 && emitted_ >= spec_.invocations)
            return false;
        TraceRow row;
        if (!reader_.next(row))
            return false;
        const Seconds at = row.arrival / spec_.traceRateScale;
        if (spec_.duration > 0 && at >= spec_.duration)
            return false;
        out.arrival = at;
        out.spec = row.spec ? row.spec : pool_[rng_.below(pool_.size())];
        ++emitted_;
        return true;
    }

  private:
    TrafficSpec spec_;
    Rng rng_;
    std::vector<const workload::FunctionSpec *> pool_;
    TraceCsvReader reader_;
    std::uint64_t emitted_ = 0;
};

/**
 * The trace model. Construction runs a validation prescan — an
 * O(1)-memory incremental read that stops at the row/duration caps —
 * so a malformed trace fails when the scenario is built, not mid-run,
 * and a capped replay of a huge file never reads past the cap. The
 * prescan also records the capped span (the fault-plan horizon) and
 * warns when the row cap bites.
 */
class TraceTraffic final : public TrafficModel
{
  public:
    explicit TraceTraffic(TrafficSpec spec) : spec_(std::move(spec))
    {
        TraceCsvReader reader(spec_.tracePath);
        TraceRow row;
        bool capped = false;
        while (reader.next(row)) {
            if (spec_.invocations > 0 && kept_ >= spec_.invocations) {
                capped = true;
                break;
            }
            const Seconds at = row.arrival / spec_.traceRateScale;
            if (spec_.duration > 0 && at >= spec_.duration)
                break;
            ++kept_;
            lastKept_ = at;
        }
        if (kept_ == 0)
            fatal("traffic trace '", spec_.tracePath,
                  "' contains no arrivals");
        if (capped) {
            // A cap that bites is worth a notice: a silently
            // truncated replay reads as "covered the trace". The
            // rows past the cap are never read, so the total is
            // unknown by design.
            warn("trace '", spec_.tracePath, "': replay capped at ",
                 kept_, " rows (invocations=", spec_.invocations,
                 "); rows past the cap left unread");
        }
    }

    std::string name() const override { return "trace"; }

    /** Rows the caps keep (the prescan's count). */
    std::size_t rowCount() const { return kept_; }

    std::unique_ptr<cluster::ArrivalStream>
    open(Rng &rng,
         const std::vector<const workload::FunctionSpec *> &pool)
        const override
    {
        return std::make_unique<TraceStream>(spec_, rng, pool);
    }

    /** The capped replay's exact last timestamp (prescanned). */
    Seconds horizonHint() const override { return lastKept_; }

  private:
    TrafficSpec spec_;
    std::size_t kept_ = 0;
    Seconds lastKept_ = 0;
};

struct Registry
{
    Mutex mutex;
    std::map<std::string, TrafficModelFactory> factories
        LITMUS_GUARDED_BY(mutex);

    Registry()
    {
        // Construction is single-threaded (function-local static);
        // the lock is uncontended and keeps the guarded writes
        // visible to the thread-safety analysis without suppressions.
        MutexLock lock(&mutex);
        factories["poisson"] = [](const TrafficSpec &spec) {
            return std::make_unique<PoissonTraffic>(spec);
        };
        factories["diurnal"] = [](const TrafficSpec &spec) {
            return std::make_unique<DiurnalTraffic>(spec);
        };
        factories["burst"] = [](const TrafficSpec &spec) {
            return std::make_unique<BurstTraffic>(spec);
        };
        factories["trace"] = [](const TrafficSpec &spec) {
            return std::make_unique<TraceTraffic>(spec);
        };
        factories["azure"] = [](const TrafficSpec &spec) {
            return makeAzureTraceModel(spec);
        };
    }
};

Registry &
registry()
{
    static Registry reg;
    return reg;
}

} // namespace

void
TrafficSpec::validate() const
{
    if (model.empty())
        fatal("TrafficSpec: empty model name");
    // Replay models are bounded by their file, not by the stop knobs,
    // and their timestamps carry their own rate.
    const bool replay = model == "trace" || model == "azure";
    if (invocations == 0 && duration <= 0 && !replay)
        fatal("TrafficSpec: need a stop condition — set invocations "
              "or duration");
    // Non-finite knobs are poison, not extremes: an infinite
    // duration generates arrivals until memory runs out, and NaN is
    // false in every stop/ordering comparison.
    if (!std::isfinite(duration) || duration < 0)
        fatal("TrafficSpec: duration must be finite and >= 0, got ",
              duration);
    if (!replay &&
        (arrivalsPerSecond <= 0 || !std::isfinite(arrivalsPerSecond)))
        fatal("TrafficSpec: arrival rate must be positive and "
              "finite");
    if (diurnalPeriod <= 0 || !std::isfinite(diurnalPeriod))
        fatal("TrafficSpec: diurnal.period must be positive and "
              "finite");
    if (diurnalAmplitude < 0 || diurnalAmplitude > 1)
        fatal("TrafficSpec: diurnal.amplitude must be in [0, 1], got ",
              diurnalAmplitude);
    if (diurnalPhase < 0 || diurnalPhase >= 1)
        fatal("TrafficSpec: diurnal.phase must be in [0, 1), got ",
              diurnalPhase);
    if (burstOn <= 0 || burstOff <= 0 || !std::isfinite(burstOn) ||
        !std::isfinite(burstOff))
        fatal("TrafficSpec: burst.on and burst.off must be positive "
              "and finite");
    if (burstIdleFraction < 0 || burstIdleFraction > 1)
        fatal("TrafficSpec: burst.idle_fraction must be in [0, 1], "
              "got ", burstIdleFraction);
    if (model == "trace" && tracePath.empty())
        fatal("TrafficSpec: trace model needs trace.path");
    if (traceRateScale <= 0 || !std::isfinite(traceRateScale))
        fatal("TrafficSpec: trace.rate_scale must be positive and "
              "finite");
    if (model == "azure" && azurePath.empty())
        fatal("TrafficSpec: azure model needs azure.path");
    if (azureRateScale <= 0 || !std::isfinite(azureRateScale))
        fatal("TrafficSpec: azure.rate_scale must be positive and "
              "finite");
}

void
registerTrafficModel(const std::string &name, TrafficModelFactory factory)
{
    if (!factory)
        fatal("registerTrafficModel: null factory for '", name, "'");
    Registry &reg = registry();
    MutexLock lock(&reg.mutex);
    if (!reg.factories.emplace(name, std::move(factory)).second)
        fatal("registerTrafficModel: '", name, "' already registered");
}

std::unique_ptr<TrafficModel>
makeTrafficModel(const TrafficSpec &spec)
{
    spec.validate();
    Registry &reg = registry();
    TrafficModelFactory factory;
    {
        MutexLock lock(&reg.mutex);
        const auto it = reg.factories.find(spec.model);
        if (it != reg.factories.end())
            factory = it->second;
    }
    if (!factory) {
        std::string known;
        for (const std::string &name : trafficModelNames())
            known += (known.empty() ? "" : ", ") + name;
        fatal("unknown traffic model '", spec.model, "' (known: ",
              known, ")");
    }
    return factory(spec);
}

std::vector<std::string>
trafficModelNames()
{
    Registry &reg = registry();
    MutexLock lock(&reg.mutex);
    std::vector<std::string> names;
    names.reserve(reg.factories.size());
    for (const auto &[name, factory] : reg.factories)
        names.push_back(name);
    return names;
}

struct TraceCsvReader::Impl
{
    std::string path;
    std::ifstream file;
    unsigned lineNo = 0;
    Seconds prev = 0;
    // One leading non-numeric row (after any comments) is tolerated
    // as the column header.
    bool headerAllowed = true;
};

TraceCsvReader::TraceCsvReader(std::string path)
    : impl_(std::make_unique<Impl>())
{
    impl_->path = std::move(path);
    impl_->file.open(impl_->path);
    if (!impl_->file)
        fatal("cannot read arrival trace '", impl_->path, "'");
}

TraceCsvReader::~TraceCsvReader() = default;

bool
TraceCsvReader::next(TraceRow &row)
{
    Impl &st = *impl_;
    std::string line;
    while (std::getline(st.file, line)) {
        ++st.lineNo;
        // Strip comments and surrounding whitespace.
        const auto hash = line.find('#');
        if (hash != std::string::npos)
            line = line.substr(0, hash);
        const auto first = line.find_first_not_of(" \t\r");
        if (first == std::string::npos)
            continue;
        const auto last = line.find_last_not_of(" \t\r");
        line = line.substr(first, last - first + 1);

        std::string stamp = line;
        std::string function;
        const auto comma = line.find(',');
        if (comma != std::string::npos) {
            stamp = line.substr(0, comma);
            const auto stampEnd = stamp.find_last_not_of(" \t");
            stamp = stampEnd == std::string::npos
                        ? ""
                        : stamp.substr(0, stampEnd + 1);
            function = line.substr(comma + 1);
            const auto fnFirst = function.find_first_not_of(" \t");
            function = fnFirst == std::string::npos
                           ? ""
                           : function.substr(
                                 fnFirst, function.find_last_not_of(
                                              " \t") - fnFirst + 1);
        }

        char *end = nullptr;
        // LITMUS-LINT-ALLOW(raw-parse): header detection needs strtod's partial-consumption position (consumed-nothing = header row), which parseDoubleStrict hides; the full-consumption + isfinite checks below are exactly the strict contract
        const double at = std::strtod(stamp.c_str(), &end);
        // strtod happily parses "nan"/"inf", and NaN slips past
        // every ordering comparison below — reject non-finite
        // timestamps as malformed.
        if (!end || *end != '\0' || stamp.empty() ||
            !std::isfinite(at)) {
            // The header row is one where the timestamp field is not
            // numeric at all; anything strtod makes partial sense of
            // ("nan", "0.5s") is a malformed data row, even first.
            if (st.headerAllowed && !stamp.empty() &&
                end == stamp.c_str()) {
                st.headerAllowed = false;
                continue;
            }
            fatal("trace '", st.path, "' line ", st.lineNo,
                  ": bad arrival timestamp '", stamp, "'");
        }
        st.headerAllowed = false;
        if (at < 0)
            fatal("trace '", st.path, "' line ", st.lineNo,
                  ": negative arrival time ", at);
        if (at < st.prev)
            fatal("trace '", st.path, "' line ", st.lineNo,
                  ": arrivals out of order (", at, " after ", st.prev,
                  ")");
        st.prev = at;

        row.arrival = at;
        // An unknown function name fatal()s with the suite listing.
        row.spec = function.empty()
                       ? nullptr
                       : &workload::functionByName(function);
        return true;
    }
    return false;
}

std::vector<TraceRow>
loadArrivalTrace(const std::string &path)
{
    TraceCsvReader reader(path);
    std::vector<TraceRow> rows;
    TraceRow row;
    while (reader.next(row))
        rows.push_back(row);
    return rows;
}

} // namespace litmus::scenario
