/**
 * @file
 * Declarative scenario specifications: one file (or one struct)
 * describing a whole fleet experiment.
 *
 * A scenario bundles everything a fleet run needs — the machine
 * groups, the dispatch policy, the traffic model and its knobs, the
 * function pool, pricing, duration and seed — in the same flat
 * key=value format the machine presets already use (ConfigReader:
 * one `key = value` per line, '#' comments). Example:
 *
 *     # peak/off-peak load on a mixed fleet
 *     fleet       = cascade-5218:2,icelake-4314:2
 *     policy      = cost-aware
 *     traffic     = diurnal
 *     rate        = 4000
 *     invocations = 20000
 *     diurnal.period    = 30
 *     diurnal.amplitude = 0.9
 *     seed        = 7
 *
 * Unknown keys are fatal() so typos surface immediately. The same
 * schema is available programmatically: every key can be applied
 * with ScenarioSpec::set("key", "value"), which is what the CLI
 * shims use to overlay explicit flags onto a loaded file.
 */

#ifndef LITMUS_SCENARIO_SCENARIO_H
#define LITMUS_SCENARIO_SCENARIO_H

#include <optional>
#include <string>
#include <vector>

#include "cluster/cluster.h"
#include "scenario/traffic_model.h"

namespace litmus
{
class ConfigReader;
} // namespace litmus

namespace litmus::scenario
{

/** Parse a "type:count,type:count" fleet listing (count defaults to
 *  1); fatal() on malformed counts or an empty spec. */
std::vector<cluster::MachineGroup>
parseFleetSpec(const std::string &spec);

/**
 * The declarative scenario. Defaults mirror the litmus_fleet CLI so
 * an empty file and a flagless invocation describe the same run.
 */
struct ScenarioSpec
{
    /** @name Fleet @{ */
    std::vector<cluster::MachineGroup> fleet = {{"cascade-5218", 4}};
    cluster::DispatchPolicy policy =
        cluster::DispatchPolicy::WarmthAware;
    /** @} */

    /** The arrival process (model name + knobs). */
    TrafficSpec traffic;

    /** The fault campaign (fault.* keys; default: no faults). */
    cluster::FaultSpec fault;

    /**
     * Sampling pool: the named set ("all", "test", "reference",
     * "memory") or an explicit comma list of suite function names.
     */
    std::string functions = "all";

    /** @name Serving model @{ */
    std::uint64_t seed = 1;
    Seconds epoch = 1e-3;
    Seconds keepAlive = 10.0;
    unsigned threads = 0;
    cluster::SchedulerBackend scheduler =
        cluster::SchedulerBackend::Event;
    bool exactQuantum = false;
    Seconds drainCap = 600.0;

    /** A/B escape hatch (`arrivals = upfront`): materialize the
     *  whole arrival trace before serving instead of streaming it.
     *  Totals are bit-identical either way (a tested gate); upfront
     *  pays O(total arrivals) memory. */
    bool upfrontArrivals = false;
    /** @} */

    /** @name Pricing @{ */
    /** Calibrate every fleet machine type in-process (memoized via
     *  ProfileStore), enabling Litmus pricing. */
    bool calibrate = false;

    /** Calibration level cap for in-process sweeps (0 = the full
     *  dedicated sweep); smoke runs set 2-3. */
    unsigned calibrationLevels = 0;

    /** Serialized calibration profiles to load (enables Litmus
     *  pricing; one per machine type). */
    std::vector<std::string> tables;

    /** Persist the active profiles here (one file per type). */
    std::string tablesOut;

    /** Attach Litmus probes: unset = auto (on iff pricing). */
    std::optional<bool> probes;

    /** Method 1 sharing factor for Litmus quotes. */
    double sharingFactor = 1.0;
    /** @} */

    /**
     * Whether an `invocations` key has been applied through set().
     * Switching to a replay model (`traffic = trace` or `azure`)
     * drops the generative models' 10000-arrival default unless the
     * user asked for a cap, so an untouched replay scenario serves
     * its whole file.
     */
    bool invocationsExplicit = false;

    /**
     * Apply one key=value pair — the programmatic builder and the
     * file parser share this. fatal() on unknown keys or malformed
     * values. Returns *this for chaining:
     *
     *     ScenarioSpec().set("traffic", "burst").set("rate", "5000")
     */
    ScenarioSpec &set(const std::string &key, const std::string &value);

    /** Apply every key of a parsed config, in file order. Unknown
     *  keys fatal() with the config's file:line locator, so a typo
     *  in a scenario file points at the offending line. */
    static ScenarioSpec fromConfig(const ConfigReader &config);

    /** Load from a scenario file. A relative trace.path or
     *  azure.path is resolved against the scenario file's
     *  directory. */
    static ScenarioSpec fromFile(const std::string &path);

    /** Parse from text (tests, embedded scenarios). */
    static ScenarioSpec fromString(const std::string &text);

    /** Resolve the `functions` listing; fatal() on unknown names or
     *  an empty pool. */
    std::vector<const workload::FunctionSpec *> functionPool() const;

    /** fatal() on inconsistent settings (delegates to the traffic
     *  spec and mirrors ClusterConfig::validate). */
    void validate() const;

    /** The recognized keys, sorted (help text). */
    static std::vector<std::string> knownKeys();
};

} // namespace litmus::scenario

#endif // LITMUS_SCENARIO_SCENARIO_H
