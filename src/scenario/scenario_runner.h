/**
 * @file
 * ScenarioRunner: from a declarative ScenarioSpec to a FleetReport.
 *
 * The runner owns every resource a scenario needs beyond the cluster
 * itself — the traffic model, loaded or in-process-calibrated pricing
 * profiles and their discount models (the cluster borrows them) — so
 * apps, benches, and tests can go from "spec" to "report" in two
 * lines:
 *
 *     scenario::ScenarioRunner runner(
 *         scenario::ScenarioSpec::fromFile(path));
 *     const cluster::FleetReport &report = runner.run();
 *
 * A poisson scenario reproduces the pre-scenario fleet bit-exactly at
 * the same seed (the poisson model replicates the cluster's old
 * inline generator draw-for-draw), so migrating an experiment onto
 * the runner never moves its numbers.
 */

#ifndef LITMUS_SCENARIO_SCENARIO_RUNNER_H
#define LITMUS_SCENARIO_SCENARIO_RUNNER_H

#include <iosfwd>
#include <memory>

#include "core/profile_store.h"
#include "scenario/scenario.h"

namespace litmus::scenario
{

/** Single-shot scenario execution (like the Cluster it wraps). */
class ScenarioRunner
{
  public:
    /**
     * Validates the spec, builds the traffic model, and resolves
     * pricing (loads `tables`, runs the memoized `calibrate` sweeps,
     * writes `tables_out`). fatal() on any inconsistency.
     */
    explicit ScenarioRunner(ScenarioSpec spec);
    ~ScenarioRunner();

    ScenarioRunner(const ScenarioRunner &) = delete;
    ScenarioRunner &operator=(const ScenarioRunner &) = delete;

    /** Build the cluster, serve the scenario to completion, and
     *  return the fleet report. May be called once. */
    const cluster::FleetReport &run();

    const ScenarioSpec &spec() const { return spec_; }

    /** The fully-resolved fleet configuration the cluster runs. */
    const cluster::ClusterConfig &clusterConfig() const
    {
        return cfg_;
    }

    /** The instantiated traffic model. */
    const TrafficModel &traffic() const { return *traffic_; }

    /** The cluster (inspection; valid after run()). */
    const cluster::Cluster &cluster() const;

    /** Active calibration profiles, one per priced machine type. */
    const std::vector<pricing::ProfileStore::ProfilePtr> &
    profiles() const
    {
        return profiles_;
    }

  private:
    void bindPricing();

    ScenarioSpec spec_;
    std::unique_ptr<TrafficModel> traffic_;
    std::vector<const workload::FunctionSpec *> pool_;
    std::vector<pricing::ProfileStore::ProfilePtr> profiles_;
    std::vector<std::unique_ptr<pricing::DiscountModel>> models_;
    cluster::ClusterConfig cfg_;
    std::unique_ptr<cluster::Cluster> cluster_;
};

/** Print the standard fleet report: per-machine rows, per-type
 *  breakdown, fleet totals, and the throughput/discount footer
 *  (shared by litmus_fleet, litmus_sim, and the examples). */
void printFleetReport(std::ostream &os,
                      const cluster::FleetReport &report);

} // namespace litmus::scenario

#endif // LITMUS_SCENARIO_SCENARIO_RUNNER_H
