/**
 * @file
 * Pluggable fleet traffic models: the arrival process as a plugin.
 *
 * Until now every fleet experiment was hard-wired to one open-loop
 * Poisson source generated inline by the cluster. The Litmus fairness
 * claims are only as convincing as the workloads billed under, so the
 * scenario layer turns "how do invocations arrive" into an interface
 * with four built-ins:
 *
 *  - poisson  the classic open-loop memoryless stream (the legacy
 *             source, now a plugin — bit-identical to the cluster's
 *             old inline generator at the same seed);
 *  - diurnal  a sinusoid-modulated rate (day/night load swing),
 *             sampled by Lewis-Shedler thinning against the peak
 *             rate;
 *  - burst    a two-state Markov-modulated process (MMPP-style
 *             on/off): exponential on/off holding times, full burst
 *             rate while on, an optional idle trickle while off, with
 *             the rates solved so the long-run mean matches the
 *             configured arrival rate;
 *  - trace    replay of arrival timestamps (+ optional function
 *             names) from a CSV file, with a rate-rescale knob.
 *
 * Custom processes register through registerTrafficModel() and become
 * addressable from scenario files by name. Every model generates its
 * whole trace up front from one Rng, so a fixed seed gives the same
 * arrivals at any thread count — the fleet determinism guarantee does
 * not depend on which model produced the traffic.
 */

#ifndef LITMUS_SCENARIO_TRAFFIC_MODEL_H
#define LITMUS_SCENARIO_TRAFFIC_MODEL_H

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "cluster/traffic_source.h"
#include "common/rng.h"

namespace litmus::scenario
{

/**
 * Declarative description of one traffic source. The scenario-file
 * keys map one-to-one (traffic=, rate=, invocations=, duration=,
 * diurnal.*, burst.*, trace.*).
 */
struct TrafficSpec
{
    /** Model name resolved through the registry. */
    std::string model = "poisson";

    /** Long-run mean arrival rate (invocations per second). Ignored
     *  by `trace`, whose timestamps carry their own rate. */
    double arrivalsPerSecond = 2000.0;

    /** Arrivals to generate (0 = run until `duration`). For `trace`:
     *  a cap on replayed rows (0 = the whole file). */
    std::uint64_t invocations = 10000;

    /** Stop generating at this simulated time (0 = run until
     *  `invocations`). When both are set, whichever limit is hit
     *  first wins; at least one must be set. */
    Seconds duration = 0;

    /** @name diurnal: rate(t) = rate * (1 + A sin(2pi(t/P + phi))) @{ */
    /** P: period of one load cycle in simulated seconds. */
    Seconds diurnalPeriod = 60.0;
    /** A: relative swing in [0, 1]; 1 idles the troughs completely. */
    double diurnalAmplitude = 0.8;
    /** phi: phase offset as a fraction of a period in [0, 1). */
    double diurnalPhase = 0.0;
    /** @} */

    /** @name burst: two-state on/off MMPP @{ */
    /** Mean burst (on-state) duration in seconds. */
    Seconds burstOn = 0.5;
    /** Mean gap (off-state) duration in seconds. */
    Seconds burstOff = 2.0;
    /** Off-state trickle as a fraction of the mean rate, in [0, 1].
     *  The on-state rate is solved so the long-run mean stays at
     *  arrivalsPerSecond. */
    double burstIdleFraction = 0.0;
    /** @} */

    /** @name trace: CSV replay @{ */
    /** CSV of `arrival_seconds,function` rows ('#' comments and an
     *  optional header line allowed; an empty function field samples
     *  the scenario's pool instead). */
    std::string tracePath;
    /** Rate rescale: 2.0 replays the trace twice as fast (timestamps
     *  halved), 0.5 at half speed. */
    double traceRateScale = 1.0;
    /** @} */

    /** fatal() on out-of-range parameters. */
    void validate() const;
};

/**
 * One arrival process, by its registry name ("poisson", "diurnal",
 * ...). The generation contract — full trace up front, nondecreasing
 * timestamps, non-null specs, identical output for equal-seeded
 * generators — is cluster::TrafficSource's; the scenario layer adds
 * only the registry. The interface lives in the cluster layer so the
 * cluster can consume models without an upward include.
 */
class TrafficModel : public cluster::TrafficSource
{
};

/** Factory signature for registered models. */
using TrafficModelFactory =
    std::function<std::unique_ptr<TrafficModel>(const TrafficSpec &)>;

/**
 * Register a custom model under @p name (fatal() on a duplicate).
 * Thread-safe; the built-ins are pre-registered.
 */
void registerTrafficModel(const std::string &name,
                          TrafficModelFactory factory);

/** Build the model @p spec names; fatal() with the known names when
 *  the registry has no entry. */
std::unique_ptr<TrafficModel> makeTrafficModel(const TrafficSpec &spec);

/** Registered model names, sorted (help text, error listings). */
std::vector<std::string> trafficModelNames();

/**
 * Parsed trace-replay rows (exposed for tests and tools). fatal()s on
 * unreadable files, malformed timestamps, unknown function names, or
 * out-of-order rows. A null spec means "sample the pool at replay".
 */
struct TraceRow
{
    Seconds arrival = 0;
    const workload::FunctionSpec *spec = nullptr;
};
std::vector<TraceRow> loadArrivalTrace(const std::string &path);

} // namespace litmus::scenario

#endif // LITMUS_SCENARIO_TRAFFIC_MODEL_H
