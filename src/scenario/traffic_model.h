/**
 * @file
 * Pluggable fleet traffic models: the arrival process as a plugin.
 *
 * Until now every fleet experiment was hard-wired to one open-loop
 * Poisson source generated inline by the cluster. The Litmus fairness
 * claims are only as convincing as the workloads billed under, so the
 * scenario layer turns "how do invocations arrive" into an interface
 * with four built-ins:
 *
 *  - poisson  the classic open-loop memoryless stream (the legacy
 *             source, now a plugin — bit-identical to the cluster's
 *             old inline generator at the same seed);
 *  - diurnal  a sinusoid-modulated rate (day/night load swing),
 *             sampled by Lewis-Shedler thinning against the peak
 *             rate;
 *  - burst    a two-state Markov-modulated process (MMPP-style
 *             on/off): exponential on/off holding times, full burst
 *             rate while on, an optional idle trickle while off, with
 *             the rates solved so the long-run mean matches the
 *             configured arrival rate;
 *  - trace    replay of arrival timestamps (+ optional function
 *             names) from a CSV file, with a rate-rescale knob;
 *  - azure    ingestion of the public Azure Functions dataset shape
 *             (per-function minute-bucket invocation counts — see
 *             scenario/azure_trace.h), sampled into deterministic
 *             timestamps one minute at a time.
 *
 * Custom processes register through registerTrafficModel() and become
 * addressable from scenario files by name. Every built-in is a native
 * stream: open() yields arrivals one at a time from a single fork()
 * of the run's arrival Rng, so memory stays O(model lookahead) for
 * day-long million-function workloads, and a fixed seed gives the
 * same arrivals at any thread count whether the stream is pulled
 * lazily or drained upfront through generate() — the fleet
 * determinism guarantee does not depend on which model produced the
 * traffic, nor on how it was consumed.
 */

#ifndef LITMUS_SCENARIO_TRAFFIC_MODEL_H
#define LITMUS_SCENARIO_TRAFFIC_MODEL_H

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "cluster/traffic_source.h"
#include "common/rng.h"

namespace litmus::scenario
{

/**
 * Declarative description of one traffic source. The scenario-file
 * keys map one-to-one (traffic=, rate=, invocations=, duration=,
 * diurnal.*, burst.*, trace.*).
 */
struct TrafficSpec
{
    /** Model name resolved through the registry. */
    std::string model = "poisson";

    /** Long-run mean arrival rate (invocations per second). Ignored
     *  by `trace`, whose timestamps carry their own rate. */
    double arrivalsPerSecond = 2000.0;

    /** Arrivals to generate (0 = run until `duration`). For `trace`:
     *  a cap on replayed rows (0 = the whole file). */
    std::uint64_t invocations = 10000;

    /** Stop generating at this simulated time (0 = run until
     *  `invocations`). When both are set, whichever limit is hit
     *  first wins; at least one must be set. */
    Seconds duration = 0;

    /** @name diurnal: rate(t) = rate * (1 + A sin(2pi(t/P + phi))) @{ */
    /** P: period of one load cycle in simulated seconds. */
    Seconds diurnalPeriod = 60.0;
    /** A: relative swing in [0, 1]; 1 idles the troughs completely. */
    double diurnalAmplitude = 0.8;
    /** phi: phase offset as a fraction of a period in [0, 1). */
    double diurnalPhase = 0.0;
    /** @} */

    /** @name burst: two-state on/off MMPP @{ */
    /** Mean burst (on-state) duration in seconds. */
    Seconds burstOn = 0.5;
    /** Mean gap (off-state) duration in seconds. */
    Seconds burstOff = 2.0;
    /** Off-state trickle as a fraction of the mean rate, in [0, 1].
     *  The on-state rate is solved so the long-run mean stays at
     *  arrivalsPerSecond. */
    double burstIdleFraction = 0.0;
    /** @} */

    /** @name trace: CSV replay @{ */
    /** CSV of `arrival_seconds,function` rows ('#' comments and an
     *  optional header line allowed; an empty function field samples
     *  the scenario's pool instead). */
    std::string tracePath;
    /** Rate rescale: 2.0 replays the trace twice as fast (timestamps
     *  halved), 0.5 at half speed. */
    double traceRateScale = 1.0;
    /** @} */

    /** @name azure: Azure Functions dataset-shape ingestion @{ */
    /** CSV in the Azure Functions dataset shape: identity columns
     *  (owner/app/function hashes, trigger) then one invocation-count
     *  column per minute of the day (see scenario/azure_trace.h). */
    std::string azurePath;
    /** Cap on ingested function rows (0 = every row). Enforced
     *  during the parse — rows past the cap are never read. */
    std::uint64_t azureMaxRows = 0;
    /** Rate rescale, as trace.rate_scale: 2.0 squeezes the trace into
     *  half the simulated time. */
    double azureRateScale = 1.0;
    /** @} */

    /** fatal() on out-of-range parameters. */
    void validate() const;
};

/**
 * One arrival process, by its registry name ("poisson", "diurnal",
 * ...). The contract — open() streams nondecreasing non-null
 * arrivals, generate() drains the same stream, identical output for
 * equal-seeded generators — is cluster::TrafficSource's; the scenario
 * layer adds only the registry. The interface lives in the cluster
 * layer so the cluster can consume models without an upward include.
 */
class TrafficModel : public cluster::TrafficSource
{
};

/** Factory signature for registered models. */
using TrafficModelFactory =
    std::function<std::unique_ptr<TrafficModel>(const TrafficSpec &)>;

/**
 * Register a custom model under @p name (fatal() on a duplicate).
 * Thread-safe; the built-ins are pre-registered.
 */
void registerTrafficModel(const std::string &name,
                          TrafficModelFactory factory);

/** Build the model @p spec names; fatal() with the known names when
 *  the registry has no entry. */
std::unique_ptr<TrafficModel> makeTrafficModel(const TrafficSpec &spec);

/** Registered model names, sorted (help text, error listings). */
std::vector<std::string> trafficModelNames();

/**
 * One parsed trace-replay row. A null spec means "sample the pool at
 * replay".
 */
struct TraceRow
{
    Seconds arrival = 0;
    const workload::FunctionSpec *spec = nullptr;
};

/**
 * Incremental `arrival_seconds,function` CSV reader: one validated
 * row per next() call, O(1) memory regardless of file size — the
 * `trace` model's backing reader (its build-time validation prescan
 * and each opened stream run one of these), also exposed for tests
 * and tools. fatal()s with file:line on unreadable files, malformed
 * or non-finite timestamps, unknown function names, and out-of-order
 * rows; '#' comments and one leading non-numeric header row are
 * tolerated.
 */
class TraceCsvReader
{
  public:
    explicit TraceCsvReader(std::string path);
    TraceCsvReader(const TraceCsvReader &) = delete;
    TraceCsvReader &operator=(const TraceCsvReader &) = delete;
    ~TraceCsvReader();

    /** Parse the next data row into @p row; false at end of file. */
    bool next(TraceRow &row);

  private:
    struct Impl;
    std::unique_ptr<Impl> impl_;
};

/** Drain a TraceCsvReader: every row of @p path, materialized
 *  (small-file convenience for tests and tools). */
std::vector<TraceRow> loadArrivalTrace(const std::string &path);

} // namespace litmus::scenario

#endif // LITMUS_SCENARIO_TRAFFIC_MODEL_H
