#include "scenario/azure_trace.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <sstream>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "common/rng.h"
#include "workload/suite.h"

namespace litmus::scenario
{

namespace
{

constexpr double kPi = 3.14159265358979323846;
constexpr Seconds kMinute = 60.0;

/** Identity columns before the minute-count columns. */
constexpr std::size_t kIdentityColumns = 4;

/** Strict nonnegative-integer parse (digits only; no sign, no
 *  whitespace, no exponent) — the only thing a count cell may hold. */
bool
parseCount(const std::string &field, std::uint64_t &out)
{
    if (field.empty() || field.size() > 15)
        return false;
    std::uint64_t v = 0;
    for (const char c : field) {
        if (c < '0' || c > '9')
            return false;
        v = v * 10 + static_cast<std::uint64_t>(c - '0');
    }
    out = v;
    return true;
}

/** FNV-1a over the row identity: stable across runs and platforms,
 *  the hash that spreads unmapped functions over the pool. */
std::uint64_t
fnv1a(const std::string &owner, const std::string &app,
      const std::string &function)
{
    std::uint64_t h = 1469598103934665603ull;
    const auto mix = [&h](const std::string &s) {
        for (const char c : s) {
            h ^= static_cast<unsigned char>(c);
            h *= 1099511628211ull;
        }
        h ^= 0xff; // field separator: ("a","bc") != ("ab","c")
        h *= 1099511628211ull;
    };
    mix(owner);
    mix(app);
    mix(function);
    return h;
}

/** Split one CSV line into trimmed fields. */
std::vector<std::string>
splitCsv(const std::string &line)
{
    std::vector<std::string> fields;
    std::size_t start = 0;
    while (true) {
        const std::size_t comma = line.find(',', start);
        std::string field =
            comma == std::string::npos
                ? line.substr(start)
                : line.substr(start, comma - start);
        const auto first = field.find_first_not_of(" \t\r");
        field = first == std::string::npos
                    ? ""
                    : field.substr(first, field.find_last_not_of(
                                              " \t\r") - first + 1);
        fields.push_back(std::move(field));
        if (comma == std::string::npos)
            return fields;
        start = comma + 1;
    }
}

/** One ingested function row's arrival identity. */
struct AzureRow
{
    /** Suite member the HashFunction field named, or null (then the
     *  identity hash picks from the run's pool). */
    const workload::FunctionSpec *spec = nullptr;

    /** FNV-1a of (owner, app, function). */
    std::uint64_t hash = 0;
};

/** One nonzero minute bucket: `count` invocations of row `row`
 *  somewhere in minute `minute`. The whole resident footprint of an
 *  ingested trace is these 16 bytes per nonzero bucket. */
struct AzureBucket
{
    std::uint32_t minute = 0;
    std::uint32_t row = 0;
    std::uint64_t count = 0;
};

/** The parsed, capped, minute-sorted index one `azure` model owns. */
struct AzureIndex
{
    std::vector<AzureRow> rows;

    /** Sorted by minute; rows within a minute in file order. */
    std::vector<AzureBucket> buckets;

    /** Minute columns in the file (bucket-seed stride). */
    std::uint32_t minuteColumns = 0;

    /** Last nonzero minute (horizon estimate). */
    std::uint32_t lastMinute = 0;

    /** Total invocations across kept buckets. */
    std::uint64_t total = 0;
};

/**
 * Parse a dataset-shaped CSV into the bucket index. Row and
 * column-shape validation fatal() with file:line; the row cap stops
 * the read — rows past it are never parsed.
 */
AzureIndex
parseAzureCsv(const std::string &path, std::uint64_t maxRows)
{
    std::ifstream file(path);
    if (!file)
        fatal("cannot read azure trace '", path, "'");

    AzureIndex index;
    std::string line;
    unsigned lineNo = 0;
    bool headerAllowed = true;
    bool capped = false;
    while (std::getline(file, line)) {
        ++lineNo;
        const auto hash = line.find('#');
        if (hash != std::string::npos)
            line = line.substr(0, hash);
        if (line.find_first_not_of(" \t\r") == std::string::npos)
            continue;

        const std::vector<std::string> fields = splitCsv(line);
        if (fields.size() < kIdentityColumns + 1)
            fatal("azure trace '", path, "' line ", lineNo,
                  ": expected at least ", kIdentityColumns + 1,
                  " columns (owner, app, function, trigger, counts), "
                  "got ", fields.size());

        std::uint64_t count = 0;
        if (headerAllowed &&
            (fields[0] == "HashOwner" ||
             !parseCount(fields[kIdentityColumns], count))) {
            // The dataset's header: identity column names, then the
            // minute numbers — which are digits, so spotting the
            // header needs the identity columns, not the count probe.
            // Its shape fixes the column count.
            headerAllowed = false;
            index.minuteColumns = static_cast<std::uint32_t>(
                fields.size() - kIdentityColumns);
            continue;
        }
        headerAllowed = false;
        if (index.minuteColumns == 0)
            index.minuteColumns = static_cast<std::uint32_t>(
                fields.size() - kIdentityColumns);
        if (fields.size() - kIdentityColumns != index.minuteColumns)
            fatal("azure trace '", path, "' line ", lineNo, ": row has ",
                  fields.size() - kIdentityColumns,
                  " count columns, expected ", index.minuteColumns);

        if (maxRows > 0 && index.rows.size() >= maxRows) {
            capped = true;
            break;
        }

        AzureRow row;
        // Mapping heuristic: a HashFunction field naming a Table 1
        // member pins that function; everything else spreads over
        // the run's pool by identity hash.
        row.spec = workload::findFunction(fields[2]);
        row.hash = fnv1a(fields[0], fields[1], fields[2]);
        const std::uint32_t rowIdx =
            static_cast<std::uint32_t>(index.rows.size());
        index.rows.push_back(row);

        for (std::uint32_t m = 0; m < index.minuteColumns; ++m) {
            const std::string &cell = fields[kIdentityColumns + m];
            if (!parseCount(cell, count))
                fatal("azure trace '", path, "' line ", lineNo,
                      ": bad invocation count '", cell, "' in minute ",
                      m + 1);
            if (count == 0)
                continue;
            index.buckets.push_back({m, rowIdx, count});
            index.total += count;
            index.lastMinute = std::max(index.lastMinute, m);
        }
    }
    if (index.rows.empty())
        fatal("azure trace '", path, "' contains no function rows");
    if (index.total == 0)
        fatal("azure trace '", path, "' contains no invocations");
    if (capped)
        warn("azure trace '", path, "': ingest capped at ",
             index.rows.size(), " rows (azure.max_rows=", maxRows,
             "); rows past the cap left unread");

    // Column-major time order: the file is row-major, the stream
    // emits minute by minute. Stable, so rows keep file order within
    // a minute.
    std::stable_sort(index.buckets.begin(), index.buckets.end(),
                     [](const AzureBucket &a, const AzureBucket &b) {
                         return a.minute < b.minute;
                     });
    return index;
}

/**
 * The pull cursor over one ingested trace: materializes one minute of
 * arrivals at a time. Each bucket's timestamps come from a
 * per-(stream, row, minute) derived Rng, so the sequence is a pure
 * function of the scenario seed — not of pull order, thread count, or
 * which other buckets exist.
 */
class AzureStream final : public cluster::ArrivalStream
{
  public:
    AzureStream(const TrafficSpec &spec, const AzureIndex &index,
                Rng &rng,
                const std::vector<const workload::FunctionSpec *> &pool)
        : ArrivalStream("azure"), spec_(spec), index_(index),
          pool_(pool)
    {
        Rng forked = rng.fork();
        baseSeed_ = forked();
    }

  protected:
    bool produce(cluster::Invocation &out) override
    {
        if (spec_.invocations > 0 && emitted_ >= spec_.invocations)
            return false;
        while (bufferNext_ >= buffer_.size()) {
            if (!fillNextMinute())
                return false;
        }
        const Pending &p = buffer_[bufferNext_];
        if (spec_.duration > 0 && p.arrival >= spec_.duration)
            return false; // sorted: every later arrival is past too
        out.arrival = p.arrival;
        out.spec = p.spec;
        ++bufferNext_;
        ++emitted_;
        return true;
    }

  private:
    struct Pending
    {
        Seconds arrival = 0;
        const workload::FunctionSpec *spec = nullptr;
    };

    /** Deterministic per-bucket substream, FaultPlan-style: the
     *  Rng constructor SplitMix64-scrambles the seed, so consecutive
     *  bucket ids give independent streams. */
    std::uint64_t bucketSeed(const AzureBucket &b) const
    {
        return baseSeed_ +
               static_cast<std::uint64_t>(b.row) * index_.minuteColumns +
               b.minute;
    }

    bool fillNextMinute()
    {
        if (cursor_ >= index_.buckets.size())
            return false;
        buffer_.clear();
        bufferNext_ = 0;
        const std::uint32_t minute = index_.buckets[cursor_].minute;
        const Seconds start = kMinute * minute;
        while (cursor_ < index_.buckets.size() &&
               index_.buckets[cursor_].minute == minute) {
            const AzureBucket &b = index_.buckets[cursor_];
            const AzureRow &row = index_.rows[b.row];
            const workload::FunctionSpec *spec =
                row.spec ? row.spec
                         : pool_[row.hash % pool_.size()];
            Rng bucketRng(bucketSeed(b));
            for (std::uint64_t i = 0; i < b.count; ++i) {
                Pending p;
                p.arrival = (start + bucketRng.uniform() * kMinute) /
                            spec_.azureRateScale;
                p.spec = spec;
                buffer_.push_back(p);
            }
            ++cursor_;
        }
        // Merge the minute across rows; stable keeps (file row, draw
        // index) order on ties, so the order is fully deterministic.
        std::stable_sort(buffer_.begin(), buffer_.end(),
                         [](const Pending &a, const Pending &b) {
                             return a.arrival < b.arrival;
                         });
        noteBuffered(buffer_.size());
        return true;
    }

    TrafficSpec spec_;
    const AzureIndex &index_;
    std::vector<const workload::FunctionSpec *> pool_;
    std::uint64_t baseSeed_ = 0;
    std::size_t cursor_ = 0;
    std::vector<Pending> buffer_;
    std::size_t bufferNext_ = 0;
    std::uint64_t emitted_ = 0;
};

class AzureTraffic final : public TrafficModel
{
  public:
    explicit AzureTraffic(TrafficSpec spec)
        : spec_(std::move(spec)),
          index_(parseAzureCsv(spec_.azurePath, spec_.azureMaxRows))
    {
    }

    std::string name() const override { return "azure"; }

    std::unique_ptr<cluster::ArrivalStream>
    open(Rng &rng,
         const std::vector<const workload::FunctionSpec *> &pool)
        const override
    {
        return std::make_unique<AzureStream>(spec_, index_, rng, pool);
    }

    Seconds horizonHint() const override
    {
        const Seconds span = kMinute * (index_.lastMinute + 1) /
                             spec_.azureRateScale;
        return spec_.duration > 0 ? std::min(spec_.duration, span)
                                  : span;
    }

  private:
    TrafficSpec spec_;
    AzureIndex index_;
};

/** Lower-case hex of one 64-bit value (synthetic identity fields). */
std::string
hex16(std::uint64_t v)
{
    std::ostringstream out;
    out << std::hex;
    out.width(16);
    out.fill('0');
    out << v;
    return out.str();
}

} // namespace

std::unique_ptr<TrafficModel>
makeAzureTraceModel(const TrafficSpec &spec)
{
    return std::make_unique<AzureTraffic>(spec);
}

std::uint64_t
writeAzureShapedCsv(const std::string &path, const AzureTraceGenSpec &spec)
{
    if (spec.functions == 0)
        fatal("writeAzureShapedCsv: need at least one function row");
    if (spec.minutes == 0)
        fatal("writeAzureShapedCsv: need at least one minute column");
    if (spec.invocationsPerMinute <= 0 ||
        !std::isfinite(spec.invocationsPerMinute))
        fatal("writeAzureShapedCsv: invocations per minute must be "
              "positive and finite");
    if (spec.zipfExponent <= 0)
        fatal("writeAzureShapedCsv: zipf exponent must be positive");
    if (spec.suiteNamedFraction < 0 || spec.suiteNamedFraction > 1)
        fatal("writeAzureShapedCsv: suite-named fraction must be in "
              "[0, 1]");
    if (spec.diurnalAmplitude < 0 || spec.diurnalAmplitude > 1)
        fatal("writeAzureShapedCsv: diurnal amplitude must be in "
              "[0, 1]");

    std::ofstream file(path);
    if (!file)
        fatal("writeAzureShapedCsv: cannot write '", path, "'");

    // Zipf normalizer over the function ranks.
    double zipfSum = 0;
    for (std::uint64_t i = 0; i < spec.functions; ++i)
        zipfSum += std::pow(static_cast<double>(i + 1),
                            -spec.zipfExponent);

    // Sinusoidal diurnal minute profile, one cycle over the file.
    std::vector<double> minuteWeight(spec.minutes);
    double minuteSum = 0;
    for (unsigned m = 0; m < spec.minutes; ++m) {
        minuteWeight[m] =
            1.0 + spec.diurnalAmplitude *
                      std::sin(2.0 * kPi * m / spec.minutes);
        minuteSum += minuteWeight[m];
    }

    file << "HashOwner,HashApp,HashFunction,Trigger";
    for (unsigned m = 1; m <= spec.minutes; ++m)
        file << ',' << m;
    file << '\n';

    static const char *const kTriggers[] = {"http", "timer", "queue",
                                            "event"};
    const std::vector<const workload::FunctionSpec *> suite =
        workload::allFunctions();
    const double total =
        spec.invocationsPerMinute * static_cast<double>(spec.minutes);

    std::uint64_t written = 0;
    std::ostringstream row;
    for (std::uint64_t i = 0; i < spec.functions; ++i) {
        // Per-row substream: counts are a pure function of
        // (spec, seed, row), independent of every other row.
        Rng rng(spec.seed + i + 1);
        row.str("");
        row << hex16(rng()) << ',' << hex16(rng()) << ',';
        if (rng.uniform() < spec.suiteNamedFraction)
            row << suite[rng.below(suite.size())]->name;
        else
            row << hex16(rng());
        row << ',' << kTriggers[rng.below(4)];

        const double expectedTotal =
            total *
            std::pow(static_cast<double>(i + 1), -spec.zipfExponent) /
            zipfSum;
        for (unsigned m = 0; m < spec.minutes; ++m) {
            const double expected =
                expectedTotal * minuteWeight[m] / minuteSum;
            std::uint64_t count =
                static_cast<std::uint64_t>(expected);
            if (rng.uniform() < expected - static_cast<double>(count))
                ++count;
            row << ',' << count;
            written += count;
        }
        file << row.str() << '\n';
    }
    if (!file)
        fatal("writeAzureShapedCsv: write to '", path, "' failed");
    return written;
}

} // namespace litmus::scenario
