#include "scenario/scenario.h"

#include <algorithm>

#include "common/config_reader.h"
#include "common/logging.h"
#include "common/strings.h"
#include "workload/suite.h"

namespace litmus::scenario
{

namespace
{

long
parseLong(const std::string &key, const std::string &value)
{
    const auto parsed = parseLongStrict(value);
    if (!parsed)
        fatal("scenario key '", key, "' expects an integer, got '",
              value, "'");
    return *parsed;
}

long
parseLongAtLeast(const std::string &key, const std::string &value,
                 long floor)
{
    const long parsed = parseLong(key, value);
    if (parsed < floor)
        fatal("scenario key '", key, "' must be >= ", floor, ", got ",
              parsed);
    return parsed;
}

double
parseDouble(const std::string &key, const std::string &value)
{
    const auto parsed = parseDoubleStrict(value);
    if (!parsed)
        fatal("scenario key '", key, "' expects a finite number, "
              "got '", value, "'");
    return *parsed;
}

bool
parseBool(const std::string &key, const std::string &value)
{
    if (value == "true" || value == "yes" || value == "on" ||
        value == "1")
        return true;
    if (value == "false" || value == "no" || value == "off" ||
        value == "0")
        return false;
    fatal("scenario key '", key, "' expects a boolean "
          "(true/false/yes/no/on/off/1/0), got '", value, "'");
}

/** The known-keys list as one comma-joined string (diagnostics). */
std::string
knownKeyListing()
{
    std::string known;
    for (const std::string &k : ScenarioSpec::knownKeys())
        known += (known.empty() ? "" : ", ") + k;
    return known;
}

} // namespace

std::vector<cluster::MachineGroup>
parseFleetSpec(const std::string &spec)
{
    std::vector<cluster::MachineGroup> fleet;
    for (const std::string &piece : splitNonEmpty(spec, ',')) {
        cluster::MachineGroup group;
        const auto colon = piece.find(':');
        group.machine = piece.substr(0, colon);
        if (colon != std::string::npos) {
            const std::string count = piece.substr(colon + 1);
            const auto parsed = parseLongStrict(count);
            if (!parsed || *parsed < 1)
                fatal("fleet spec: bad machine count '", count,
                      "' in '", piece, "' (want <type>:<count>)");
            group.count = static_cast<unsigned>(*parsed);
        }
        fleet.push_back(group);
    }
    if (fleet.empty())
        fatal("fleet spec: empty fleet listing");
    return fleet;
}

ScenarioSpec &
ScenarioSpec::set(const std::string &key, const std::string &value)
{
    if (key == "fleet") {
        fleet = parseFleetSpec(value);
    } else if (key == "policy") {
        policy = cluster::policyByName(value);
    } else if (key == "traffic") {
        traffic.model = value;
        // The 10000-arrival default is a stop condition for the
        // generative models; a replay must not silently truncate its
        // file to it.
        if ((value == "trace" || value == "azure") &&
            !invocationsExplicit)
            traffic.invocations = 0;
    } else if (key == "arrivals") {
        if (value == "streaming")
            upfrontArrivals = false;
        else if (value == "upfront")
            upfrontArrivals = true;
        else
            fatal("scenario key 'arrivals' expects 'streaming' or "
                  "'upfront', got '", value, "'");
    } else if (key == "rate") {
        traffic.arrivalsPerSecond = parseDouble(key, value);
    } else if (key == "invocations") {
        traffic.invocations = static_cast<std::uint64_t>(
            parseLongAtLeast(key, value, 0));
        invocationsExplicit = true;
    } else if (key == "duration") {
        traffic.duration = parseDouble(key, value);
    } else if (key == "diurnal.period") {
        traffic.diurnalPeriod = parseDouble(key, value);
    } else if (key == "diurnal.amplitude") {
        traffic.diurnalAmplitude = parseDouble(key, value);
    } else if (key == "diurnal.phase") {
        traffic.diurnalPhase = parseDouble(key, value);
    } else if (key == "burst.on") {
        traffic.burstOn = parseDouble(key, value);
    } else if (key == "burst.off") {
        traffic.burstOff = parseDouble(key, value);
    } else if (key == "burst.idle_fraction") {
        traffic.burstIdleFraction = parseDouble(key, value);
    } else if (key == "trace.path") {
        traffic.tracePath = value;
    } else if (key == "trace.rate_scale") {
        traffic.traceRateScale = parseDouble(key, value);
    } else if (key == "azure.path") {
        traffic.azurePath = value;
    } else if (key == "azure.max_rows") {
        traffic.azureMaxRows = static_cast<std::uint64_t>(
            parseLongAtLeast(key, value, 0));
    } else if (key == "azure.rate_scale") {
        traffic.azureRateScale = parseDouble(key, value);
    } else if (key == "functions") {
        functions = value;
    } else if (key == "seed") {
        seed = static_cast<std::uint64_t>(
            parseLongAtLeast(key, value, 0));
    } else if (key == "epoch_us") {
        epoch = parseDouble(key, value) * 1e-6;
    } else if (key == "keepalive") {
        keepAlive = parseDouble(key, value);
    } else if (key == "threads") {
        threads = static_cast<unsigned>(
            parseLongAtLeast(key, value, 0));
    } else if (key == "scheduler") {
        scheduler = cluster::schedulerByName(value);
    } else if (key == "exact_quantum") {
        exactQuantum = parseBool(key, value);
    } else if (key == "drain_cap") {
        drainCap = parseDouble(key, value);
    } else if (key == "calibrate") {
        calibrate = parseBool(key, value);
    } else if (key == "calibration_levels") {
        calibrationLevels = static_cast<unsigned>(
            parseLongAtLeast(key, value, 0));
    } else if (key == "tables") {
        tables = splitNonEmpty(value, ',');
    } else if (key == "tables_out") {
        tablesOut = value;
    } else if (key == "probes") {
        probes = parseBool(key, value);
    } else if (key == "sharing_factor") {
        sharingFactor = parseDouble(key, value);
    } else if (key == "fault.seed") {
        fault.seed = static_cast<std::uint64_t>(
            parseLongAtLeast(key, value, 0));
    } else if (key == "fault.crash.mtbf") {
        fault.crashMtbf = parseDouble(key, value);
    } else if (key == "fault.crash.restart") {
        fault.restartDelay = parseDouble(key, value);
    } else if (key == "fault.crash.at") {
        fault.crashAt = cluster::parseScriptedFaults(key, value);
    } else if (key == "fault.slow.mtbf") {
        fault.slowMtbf = parseDouble(key, value);
    } else if (key == "fault.slow.duration") {
        fault.slowDuration = parseDouble(key, value);
    } else if (key == "fault.slow.factor") {
        fault.slowFactor = parseDouble(key, value);
    } else if (key == "fault.slow.at") {
        fault.slowAt = cluster::parseScriptedFaults(key, value);
    } else if (key == "fault.blind.mtbf") {
        fault.blindMtbf = parseDouble(key, value);
    } else if (key == "fault.blind.duration") {
        fault.blindDuration = parseDouble(key, value);
    } else if (key == "fault.blind.at") {
        fault.blindAt = cluster::parseScriptedFaults(key, value);
    } else if (key == "fault.retry") {
        fault.retry = cluster::retryPolicyByName(value);
    } else if (key == "fault.retry.max") {
        fault.retryMax = static_cast<unsigned>(
            parseLongAtLeast(key, value, 1));
    } else if (key == "fault.retry.backoff") {
        fault.retryBackoff = parseDouble(key, value);
    } else if (key == "fault.billing") {
        fault.billing = cluster::faultBillingByName(value);
    } else {
        fatal("unknown scenario key '", key, "' (known: ",
              knownKeyListing(), ")");
    }
    return *this;
}

std::vector<std::string>
ScenarioSpec::knownKeys()
{
    return {"arrivals", "azure.max_rows", "azure.path",
            "azure.rate_scale",
            "burst.idle_fraction", "burst.off", "burst.on",
            "calibrate", "calibration_levels", "diurnal.amplitude",
            "diurnal.period", "diurnal.phase", "drain_cap", "duration",
            "epoch_us", "exact_quantum", "fault.billing",
            "fault.blind.at", "fault.blind.duration",
            "fault.blind.mtbf", "fault.crash.at", "fault.crash.mtbf",
            "fault.crash.restart", "fault.retry",
            "fault.retry.backoff", "fault.retry.max", "fault.seed",
            "fault.slow.at", "fault.slow.duration",
            "fault.slow.factor", "fault.slow.mtbf", "fleet",
            "functions", "invocations", "keepalive", "policy",
            "probes", "rate", "scheduler", "seed", "sharing_factor",
            "tables",
            "tables_out", "threads", "trace.path", "trace.rate_scale",
            "traffic"};
}

ScenarioSpec
ScenarioSpec::fromConfig(const ConfigReader &config)
{
    ScenarioSpec spec;
    const std::vector<std::string> known = knownKeys();
    for (const std::string &key : config.keys()) {
        // Typos surface with the offending line, not just the key:
        // "examples/x.scenario:12: unknown scenario key ...".
        if (!std::binary_search(known.begin(), known.end(), key)) {
            const std::string where = config.where(key);
            fatal(where.empty() ? "scenario" : where,
                  ": unknown scenario key '", key, "' (known: ",
                  knownKeyListing(), ")");
        }
        spec.set(key, config.get(key));
    }
    return spec;
}

ScenarioSpec
ScenarioSpec::fromFile(const std::string &path)
{
    ScenarioSpec spec = fromConfig(ConfigReader::fromFile(path));
    // A relative trace path means "next to the scenario file", so a
    // scenario + trace pair can be shipped as a unit and run from any
    // working directory.
    const auto resolve = [&path](std::string &trace) {
        if (trace.empty() || trace.front() == '/')
            return;
        const auto slash = path.find_last_of('/');
        if (slash != std::string::npos)
            trace = path.substr(0, slash + 1) + trace;
    };
    resolve(spec.traffic.tracePath);
    resolve(spec.traffic.azurePath);
    return spec;
}

ScenarioSpec
ScenarioSpec::fromString(const std::string &text)
{
    return fromConfig(ConfigReader::fromString(text));
}

std::vector<const workload::FunctionSpec *>
ScenarioSpec::functionPool() const
{
    if (functions.empty() || functions == "all")
        return workload::allFunctions();
    if (functions == "test")
        return workload::testSet();
    if (functions == "reference")
        return workload::referenceSet();
    if (functions == "memory")
        return workload::memoryIntensiveSet();
    std::vector<const workload::FunctionSpec *> pool;
    // An unknown name fatal()s with the suite listing.
    for (const std::string &name : splitNonEmpty(functions, ','))
        pool.push_back(&workload::functionByName(name));
    if (pool.empty())
        fatal("scenario: 'functions' names no functions — use a set "
              "(all/test/reference/memory) or a comma list of suite "
              "names");
    return pool;
}

void
ScenarioSpec::validate() const
{
    traffic.validate();
    if (fleet.empty())
        fatal("scenario: fleet listing is empty");
    if (epoch <= 0)
        fatal("scenario: epoch_us must be positive");
    if (keepAlive < 0)
        fatal("scenario: negative keepalive");
    if (drainCap <= 0)
        fatal("scenario: drain_cap must be positive");
    if (sharingFactor <= 0)
        fatal("scenario: sharing_factor must be positive");
    fault.validate();
    (void)functionPool();
}

} // namespace litmus::scenario
