/**
 * @file
 * Azure Functions dataset-shape trace ingestion (traffic model
 * `azure`) and a synthetic generator for dataset-shaped CSVs.
 *
 * The public Azure Functions invocation dataset ships per-function
 * rows of minute-bucket invocation counts:
 *
 *     HashOwner,HashApp,HashFunction,Trigger,1,2,...,1440
 *     a13f...,9bd0...,c4a1...,http,0,3,0,...,12
 *
 * — four identity columns, then one count column per minute of the
 * day. This is the production-shaped workload the ROADMAP's
 * millions-of-functions goal needs, and exactly the shape a
 * materialized arrival vector cannot hold: a day of fleet-rate
 * traffic over 10^5-10^6 functions.
 *
 * The ingester turns that shape into an ArrivalStream:
 *
 *  - **Caps during parse.** Rows past `azure.max_rows` are never
 *    read; the resident index holds only the nonzero minute buckets
 *    of the kept rows — O(nonzero buckets), which under the
 *    dataset's heavy-tailed per-function popularity is far below
 *    O(total arrivals) (hot functions collapse thousands of arrivals
 *    into at most one bucket per minute).
 *  - **Deterministic bucket sampling.** A bucket of count c becomes c
 *    arrival timestamps uniform in its minute, drawn from a
 *    per-(stream, row, minute) SplitMix64-derived Rng (the FaultPlan
 *    seeding scheme), then merged in timestamp order across rows —
 *    so the arrival sequence is a pure function of the scenario seed,
 *    independent of pull order and thread count, and identical
 *    between streaming and upfront consumption. The stream buffers
 *    one minute of arrivals at a time.
 *  - **Function→suite mapping heuristics.** A HashFunction field that
 *    names a Table 1 suite member maps to it directly (curated traces
 *    can pin functions); anything else maps by FNV-1a hash of the
 *    (owner, app, function) identity onto the scenario's function
 *    pool — stable across runs, spread across the pool.
 *  - `azure.rate_scale` rescales timestamps exactly like
 *    `trace.rate_scale`; `invocations`/`duration` cap the emitted
 *    arrivals like every generative model.
 *
 * writeAzureShapedCsv() synthesizes dataset-shaped files (Zipf
 * function popularity, sinusoidal diurnal minute profile) so tests
 * and benches exercise 10^5-10^6-function traces without the real
 * download; tools/azure_trace_gen is its CLI.
 */

#ifndef LITMUS_SCENARIO_AZURE_TRACE_H
#define LITMUS_SCENARIO_AZURE_TRACE_H

#include <cstdint>
#include <memory>
#include <string>

#include "scenario/traffic_model.h"

namespace litmus::scenario
{

/**
 * Build the `azure` traffic model from @p spec (azurePath,
 * azureMaxRows, azureRateScale + the shared invocations/duration
 * caps). Parses and validates the file at construction — stopping at
 * the row cap — so malformed traces fail at scenario build time.
 * Registered in the traffic-model registry as "azure".
 */
std::unique_ptr<TrafficModel> makeAzureTraceModel(const TrafficSpec &spec);

/** Knobs for the synthetic dataset-shape generator. */
struct AzureTraceGenSpec
{
    /** Function rows to synthesize. */
    std::uint64_t functions = 1000;

    /** Minute columns (60 = one hour, 1440 = the dataset's day). */
    unsigned minutes = 60;

    /** Target fleet-wide mean invocations per minute, spread over
     *  the functions by a Zipf popularity law and over the minutes
     *  by a sinusoidal diurnal profile. */
    double invocationsPerMinute = 2000.0;

    /** Zipf popularity exponent (higher = heavier head). */
    double zipfExponent = 1.1;

    /** Fraction of rows whose HashFunction field names a real suite
     *  function (exercises the suite-mapping heuristic); the rest
     *  get opaque hex identities. */
    double suiteNamedFraction = 0.25;

    /** Diurnal swing of the minute profile in [0, 1]. */
    double diurnalAmplitude = 0.6;

    /** Generator seed (counts are a pure function of spec+seed). */
    std::uint64_t seed = 1;
};

/**
 * Write a dataset-shaped CSV to @p path, streaming row by row (O(1)
 * memory at any function count). Returns the total invocation count
 * written. fatal() on unwritable paths or zero functions/minutes.
 */
std::uint64_t writeAzureShapedCsv(const std::string &path,
                                  const AzureTraceGenSpec &spec);

} // namespace litmus::scenario

#endif // LITMUS_SCENARIO_AZURE_TRACE_H
