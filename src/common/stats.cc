#include "common/stats.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace litmus
{

double
mean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    double sum = 0.0;
    for (double x : xs)
        sum += x;
    return sum / static_cast<double>(xs.size());
}

double
gmean(const std::vector<double> &xs)
{
    if (xs.empty())
        fatal("gmean of an empty series");
    double logSum = 0.0;
    for (double x : xs) {
        if (x <= 0.0)
            fatal("gmean requires positive entries, got ", x);
        logSum += std::log(x);
    }
    return std::exp(logSum / static_cast<double>(xs.size()));
}

double
stddev(const std::vector<double> &xs)
{
    if (xs.size() < 2)
        return 0.0;
    const double m = mean(xs);
    double acc = 0.0;
    for (double x : xs)
        acc += (x - m) * (x - m);
    return std::sqrt(acc / static_cast<double>(xs.size()));
}

double
minOf(const std::vector<double> &xs)
{
    if (xs.empty())
        fatal("minOf of an empty series");
    return *std::min_element(xs.begin(), xs.end());
}

double
maxOf(const std::vector<double> &xs)
{
    if (xs.empty())
        fatal("maxOf of an empty series");
    return *std::max_element(xs.begin(), xs.end());
}

double
percentile(std::vector<double> xs, double pct)
{
    if (xs.empty())
        fatal("percentile of an empty series");
    if (pct < 0.0 || pct > 100.0)
        fatal("percentile out of range: ", pct);
    std::sort(xs.begin(), xs.end());
    if (xs.size() == 1)
        return xs.front();
    const double pos = pct / 100.0 * static_cast<double>(xs.size() - 1);
    const auto lo = static_cast<std::size_t>(pos);
    const std::size_t hi = std::min(lo + 1, xs.size() - 1);
    const double frac = pos - static_cast<double>(lo);
    return xs[lo] + frac * (xs[hi] - xs[lo]);
}

double
meanAbs(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    double sum = 0.0;
    for (double x : xs)
        sum += std::fabs(x);
    return sum / static_cast<double>(xs.size());
}

double
gmeanAbs(const std::vector<double> &xs)
{
    std::vector<double> abs;
    abs.reserve(xs.size());
    for (double x : xs) {
        const double a = std::fabs(x);
        // Ignore exact zeros: a zero error would collapse the gmean and
        // the paper's "abs geomean" bar is computed over nonzero errors.
        if (a > 0.0)
            abs.push_back(a);
    }
    if (abs.empty())
        return 0.0;
    return gmean(abs);
}

std::vector<double>
ratio(const std::vector<double> &a, const std::vector<double> &b)
{
    if (a.size() != b.size() || a.empty())
        fatal("ratio: size mismatch (", a.size(), " vs ", b.size(), ")");
    std::vector<double> out(a.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        if (b[i] == 0.0)
            fatal("ratio: zero denominator at index ", i);
        out[i] = a[i] / b[i];
    }
    return out;
}

void
OnlineStats::add(double x)
{
    if (n_ == 0) {
        min_ = max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
}

double
OnlineStats::variance() const
{
    if (n_ < 2)
        return 0.0;
    return m2_ / static_cast<double>(n_);
}

double
OnlineStats::stddev() const
{
    return std::sqrt(variance());
}

void
OnlineStats::merge(const OnlineStats &other)
{
    if (other.n_ == 0)
        return;
    if (n_ == 0) {
        *this = other;
        return;
    }
    const double total = static_cast<double>(n_ + other.n_);
    const double delta = other.mean_ - mean_;
    m2_ += other.m2_ +
           delta * delta * static_cast<double>(n_) *
               static_cast<double>(other.n_) / total;
    mean_ += delta * static_cast<double>(other.n_) / total;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
    n_ += other.n_;
}

void
OnlineStats::reset()
{
    *this = OnlineStats();
}

} // namespace litmus
