/**
 * @file
 * Regression models backing the Litmus discount estimation.
 *
 * The paper fits (Section 6, Figures 9 and 10):
 *  - linear regressions mapping startup slowdown -> reference-function
 *    slowdown, one per traffic generator, and
 *  - logarithmic regressions mapping stress level / L3 misses so the
 *    observed miss count can be placed between the CT-Gen and MB-Gen
 *    extremes with logarithmic interpolation.
 */

#ifndef LITMUS_COMMON_REGRESSION_H
#define LITMUS_COMMON_REGRESSION_H

#include <cstddef>
#include <vector>

namespace litmus
{

/**
 * Ordinary least squares fit of y = slope * x + intercept.
 *
 * Also exposes the inverse mapping (x for a given y), which the pricing
 * model uses to turn an observed startup slowdown back into an abstract
 * congestion coordinate.
 */
class LinearFit
{
  public:
    /** Fit from paired samples; requires at least two distinct x. */
    static LinearFit fit(const std::vector<double> &xs,
                         const std::vector<double> &ys);

    /** Construct directly from coefficients (tests, synthetic models). */
    LinearFit(double slope, double intercept);

    LinearFit() = default;

    double slope() const { return slope_; }
    double intercept() const { return intercept_; }

    /** Coefficient of determination of the fit (1 = perfect). */
    double r2() const { return r2_; }

    /** Predicted y at x. */
    double predict(double x) const;

    /** Inverse prediction: the x that maps to y. Requires slope != 0. */
    double invert(double y) const;

    /** Number of samples the fit was computed from. */
    std::size_t sampleCount() const { return samples_; }

  private:
    double slope_ = 0.0;
    double intercept_ = 0.0;
    double r2_ = 1.0;
    std::size_t samples_ = 0;
};

/**
 * Least squares fit of y = a + b * ln(x) for x > 0.
 *
 * Used for the L3-miss models of Figure 10(a): startup slowdown grows
 * roughly logarithmically in the observed machine L3 miss count.
 */
class LogFit
{
  public:
    /** Fit from paired samples; all xs must be positive. */
    static LogFit fit(const std::vector<double> &xs,
                      const std::vector<double> &ys);

    LogFit(double a, double b);
    LogFit() = default;

    double a() const { return a_; }
    double b() const { return b_; }
    double r2() const { return r2_; }

    /** Predicted y at x (x > 0). */
    double predict(double x) const;

    /** Inverse prediction: x such that predict(x) == y (b != 0). */
    double invert(double y) const;

  private:
    double a_ = 0.0;
    double b_ = 0.0;
    double r2_ = 1.0;
};

/**
 * Logarithmic interpolation weight of value v between lo and hi
 * (all positive): 0 when v <= lo, 1 when v >= hi, and
 * (ln v - ln lo) / (ln hi - ln lo) in between.
 *
 * This is the Figure 10 rule that places an observed L3 miss count
 * between the CT-Gen and MB-Gen extremes.
 */
double logBlendWeight(double v, double lo, double hi);

/** Plain linear interpolation helper: a + t * (b - a). */
double lerp(double a, double b, double t);

} // namespace litmus

#endif // LITMUS_COMMON_REGRESSION_H
