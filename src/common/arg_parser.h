/**
 * @file
 * Minimal command-line argument parser for the CLI tools.
 *
 * Supports long flags with values (--co-runners 160 / --co-runners=160),
 * boolean switches (--turbo), positional arguments (the subcommand),
 * and generated usage text. Unknown flags are an error, matching how a
 * provider-facing tool should fail fast.
 */

#ifndef LITMUS_COMMON_ARG_PARSER_H
#define LITMUS_COMMON_ARG_PARSER_H

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace litmus
{

/** Declarative command-line parser. */
class ArgParser
{
  public:
    /**
     * @param program tool name for usage text
     * @param summary one-line description
     */
    ArgParser(std::string program, std::string summary);

    /** Declare a flag taking a value, with a default shown in help. */
    ArgParser &addOption(const std::string &name,
                         const std::string &help,
                         const std::string &default_value = "");

    /** Declare a boolean switch (present = true). */
    ArgParser &addSwitch(const std::string &name,
                         const std::string &help);

    /** Declare a named positional argument (in order). */
    ArgParser &addPositional(const std::string &name,
                             const std::string &help);

    /**
     * Parse argv. Returns false (after printing usage) on --help or a
     * parse error; the error also sets errorText().
     */
    bool parse(int argc, const char *const *argv);

    /**
     * Standard CLI prologue: parse argv, and on --help or a parse
     * error print the message + usage to stderr and exit (0 for
     * --help, 2 for an error). Returns normally only on success, so
     * main() reduces to `args.parseOrExit(argc, argv);`.
     */
    void parseOrExit(int argc, const char *const *argv);

    /** Value of an option (declared default if not given). */
    std::string get(const std::string &name) const;

    /** Typed accessors with validation (fatal() on malformed input). */
    long getInt(const std::string &name) const;
    double getDouble(const std::string &name) const;

    /** Integer floored at @p floor — fatal() below it, so a typo'd
     *  negative can't hide inside an unsigned cast. */
    long getIntAtLeast(const std::string &name, long floor) const;

    /** True when the switch was present. */
    bool has(const std::string &name) const;

    /** Positional argument by declared name; fatal() if absent. */
    std::string positional(const std::string &name) const;

    /** Number of positionals actually provided. */
    std::size_t positionalCount() const { return positionalValues_.size(); }

    /** Usage text. */
    std::string usage() const;

    /** Parse-error description ("" when parse succeeded). */
    const std::string &errorText() const { return error_; }

  private:
    struct Option
    {
        std::string help;
        std::string value;
        bool isSwitch = false;
        bool present = false;
    };

    std::string program_;
    std::string summary_;
    std::map<std::string, Option> options_;
    std::vector<std::string> optionOrder_;
    std::vector<std::pair<std::string, std::string>> positionals_;
    std::vector<std::string> positionalValues_;
    std::string error_;
};

} // namespace litmus

#endif // LITMUS_COMMON_ARG_PARSER_H
