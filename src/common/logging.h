/**
 * @file
 * gem5-style status and error reporting helpers.
 *
 * fatal() is for user/configuration errors (clean exit); panic() is for
 * internal invariant violations (abort); warn()/inform() report
 * conditions without stopping the run. All accept printf-style
 * formatting via std::format-like variadic composition kept simple with
 * iostream building to avoid a fmt dependency.
 */

#ifndef LITMUS_COMMON_LOGGING_H
#define LITMUS_COMMON_LOGGING_H

#include <sstream>
#include <string>

namespace litmus
{

/** Severity of a log record, used by the global log filter. */
enum class LogLevel
{
    Inform,
    Warn,
    Fatal,
    Panic,
};

namespace detail
{

/** Concatenate all arguments using operator<< into one string. */
template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream os;
    (os << ... << std::forward<Args>(args));
    return os.str();
}

/** Emit a formed record; terminates the process for Fatal/Panic. */
[[noreturn]] void emitFatal(const std::string &msg);
[[noreturn]] void emitPanic(const std::string &msg);
void emitWarn(const std::string &msg);
void emitInform(const std::string &msg);

} // namespace detail

/** Set the minimum level that is printed (Fatal/Panic always print). */
void setLogThreshold(LogLevel level);

/** Current threshold, exposed for tests. */
LogLevel logThreshold();

/**
 * Report an unrecoverable user-facing error (bad configuration,
 * impossible experiment parameters) and exit with status 1.
 */
template <typename... Args>
[[noreturn]] void
fatal(Args &&...args)
{
    detail::emitFatal(detail::concat(std::forward<Args>(args)...));
}

/**
 * Report an internal invariant violation (a bug in this library) and
 * abort so a debugger or core dump can capture the state.
 */
template <typename... Args>
[[noreturn]] void
panic(Args &&...args)
{
    detail::emitPanic(detail::concat(std::forward<Args>(args)...));
}

/** Report a suspicious-but-survivable condition. */
template <typename... Args>
void
warn(Args &&...args)
{
    detail::emitWarn(detail::concat(std::forward<Args>(args)...));
}

/** Report normal operating status. */
template <typename... Args>
void
inform(Args &&...args)
{
    detail::emitInform(detail::concat(std::forward<Args>(args)...));
}

} // namespace litmus

#endif // LITMUS_COMMON_LOGGING_H
