/**
 * @file
 * Clang thread-safety capability annotations.
 *
 * The repo's lock discipline is machine-checked twice: clang's
 * `-Wthread-safety` analysis proves, at compile time, that every
 * access to a guarded member happens with the right mutex held, and
 * litmus-lint's `lock-annotation`/`lock-order` rules prove that the
 * annotations themselves exist and that lock nesting stays acyclic
 * tree-wide. These macros are the shared vocabulary: they expand to
 * clang attributes under clang and to nothing everywhere else, so gcc
 * builds are unaffected.
 *
 * Deliberately absent: a NO_THREAD_SAFETY_ANALYSIS escape hatch. The
 * tree compiles clean under `-Wthread-safety -Werror` with zero
 * suppressions; code that cannot be expressed in the annotation
 * language gets restructured (e.g. condition-variable waits are
 * written as explicit while-loops over guarded state), not silenced.
 *
 * Usage catalog (see src/common/mutex.h for the capability types):
 *
 *   litmus::Mutex mu_;                          the capability
 *   int count_ LITMUS_GUARDED_BY(mu_);          data behind it
 *   int *slot_ LITMUS_PT_GUARDED_BY(mu_);       pointee behind it
 *   void f() LITMUS_REQUIRES(mu_);              caller must hold
 *   void g() LITMUS_EXCLUDES(mu_);              caller must NOT hold
 *   litmus::Mutex a_ LITMUS_ACQUIRED_BEFORE(b_); documented order
 */

#ifndef LITMUS_COMMON_THREAD_ANNOTATIONS_H
#define LITMUS_COMMON_THREAD_ANNOTATIONS_H

#if defined(__clang__)
#define LITMUS_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define LITMUS_THREAD_ANNOTATION(x) // no-op outside clang
#endif

/** Marks a class as a lockable capability (e.g. a mutex wrapper). */
#define LITMUS_CAPABILITY(x) LITMUS_THREAD_ANNOTATION(capability(x))

/** Marks an RAII guard class that holds a capability for its scope. */
#define LITMUS_SCOPED_CAPABILITY LITMUS_THREAD_ANNOTATION(scoped_lockable)

/** The annotated member may only be touched while holding x. */
#define LITMUS_GUARDED_BY(x) LITMUS_THREAD_ANNOTATION(guarded_by(x))

/** The annotated pointer's *pointee* may only be touched holding x. */
#define LITMUS_PT_GUARDED_BY(x) LITMUS_THREAD_ANNOTATION(pt_guarded_by(x))

/** The function acquires the capability (mutex lock methods). */
#define LITMUS_ACQUIRE(...) \
    LITMUS_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/** The function releases the capability (mutex unlock methods). */
#define LITMUS_RELEASE(...) \
    LITMUS_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/** The function acquires the capability when it returns @p ret. */
#define LITMUS_TRY_ACQUIRE(...) \
    LITMUS_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

/** Callers must already hold the capability (internal helpers that
 *  run under a lock their caller took). */
#define LITMUS_REQUIRES(...) \
    LITMUS_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/** Callers must NOT hold the capability (functions that acquire it
 *  themselves; holding it on entry would self-deadlock). */
#define LITMUS_EXCLUDES(...) \
    LITMUS_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/** Documents (and lets clang check) static lock ordering. The
 *  tree-wide order is enforced by litmus-lint's lock-order rule and
 *  recorded in tools/lint/lock_order.txt. */
#define LITMUS_ACQUIRED_BEFORE(...) \
    LITMUS_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define LITMUS_ACQUIRED_AFTER(...) \
    LITMUS_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))

/** The function returns a reference to the named capability. */
#define LITMUS_RETURN_CAPABILITY(x) \
    LITMUS_THREAD_ANNOTATION(lock_returned(x))

#endif // LITMUS_COMMON_THREAD_ANNOTATIONS_H
