/**
 * @file
 * Annotated mutex capability types.
 *
 * libstdc++'s std::mutex and std::lock_guard carry no thread-safety
 * attributes, so clang's `-Wthread-safety` analysis cannot see
 * through them. These thin wrappers are the project's only mutex
 * vocabulary in src/ (litmus-lint's lock-annotation rule rejects raw
 * std::mutex members anywhere else): a litmus::Mutex IS a capability,
 * MutexLock/UniqueLock are scoped capabilities, and every member the
 * mutex protects is declared LITMUS_GUARDED_BY(it). The wrappers are
 * header-only forwarding shims — under gcc (annotations off) they
 * compile to exactly the std::mutex/std::lock_guard code they
 * replace.
 *
 * Condition variables: std::condition_variable needs a
 * std::unique_lock<std::mutex>, so UniqueLock exposes native() for
 * wait calls. Write waits as explicit while-loops over the guarded
 * predicate —
 *
 *     UniqueLock lock(&mutex_);
 *     while (!ready_)            // guarded read, lock held
 *         cv_.wait(lock.native());
 *
 * — not as wait(lock, lambda): clang analyzes a lambda body as a
 * separate function that holds nothing, so the lambda form would need
 * a suppression attribute, which this tree does not allow.
 */

#ifndef LITMUS_COMMON_MUTEX_H
#define LITMUS_COMMON_MUTEX_H

#include <mutex>

#include "common/thread_annotations.h"

namespace litmus
{

/** std::mutex as a clang thread-safety capability. */
class LITMUS_CAPABILITY("mutex") Mutex
{
  public:
    Mutex() = default;
    Mutex(const Mutex &) = delete;
    Mutex &operator=(const Mutex &) = delete;

    void lock() LITMUS_ACQUIRE() { native_.lock(); }
    void unlock() LITMUS_RELEASE() { native_.unlock(); }
    bool try_lock() LITMUS_TRY_ACQUIRE(true)
    {
        return native_.try_lock();
    }

  private:
    friend class UniqueLock;

    // LITMUS-LINT-ALLOW(lock-annotation): the one raw std::mutex in src/ — this wrapper is what makes it a visible capability
    std::mutex native_;
};

/** Scoped lock (std::lock_guard with the capability visible). */
class LITMUS_SCOPED_CAPABILITY MutexLock
{
  public:
    explicit MutexLock(Mutex *mutex) LITMUS_ACQUIRE(mutex)
        : mutex_(mutex)
    {
        mutex_->lock();
    }

    ~MutexLock() LITMUS_RELEASE() { mutex_->unlock(); }

    MutexLock(const MutexLock &) = delete;
    MutexLock &operator=(const MutexLock &) = delete;

  private:
    Mutex *mutex_;
};

/**
 * Scoped lock for condition-variable waits (std::unique_lock with the
 * capability visible). native() hands the underlying unique_lock to
 * std::condition_variable::wait, which unlocks and relocks inside the
 * call — invisible to the analysis, and sound: on every return from
 * wait() the lock is held again, which is exactly what the scoped
 * capability asserts.
 */
class LITMUS_SCOPED_CAPABILITY UniqueLock
{
  public:
    explicit UniqueLock(Mutex *mutex) LITMUS_ACQUIRE(mutex)
        : native_(mutex->native_)
    {
    }

    ~UniqueLock() LITMUS_RELEASE() {}

    UniqueLock(const UniqueLock &) = delete;
    UniqueLock &operator=(const UniqueLock &) = delete;

    /** The underlying lock, for condition_variable::wait only. */
    std::unique_lock<std::mutex> &native() { return native_; }

  private:
    std::unique_lock<std::mutex> native_;
};

} // namespace litmus

#endif // LITMUS_COMMON_MUTEX_H
