#include "common/arg_parser.h"

#include <cstdlib>
#include <iostream>
#include <sstream>

#include "common/logging.h"
#include "common/strings.h"

namespace litmus
{

ArgParser::ArgParser(std::string program, std::string summary)
    : program_(std::move(program)), summary_(std::move(summary))
{
}

ArgParser &
ArgParser::addOption(const std::string &name, const std::string &help,
                     const std::string &default_value)
{
    if (options_.contains(name))
        fatal("ArgParser: duplicate option --", name);
    options_[name] = Option{help, default_value, false, false};
    optionOrder_.push_back(name);
    return *this;
}

ArgParser &
ArgParser::addSwitch(const std::string &name, const std::string &help)
{
    if (options_.contains(name))
        fatal("ArgParser: duplicate switch --", name);
    options_[name] = Option{help, "", true, false};
    optionOrder_.push_back(name);
    return *this;
}

ArgParser &
ArgParser::addPositional(const std::string &name,
                         const std::string &help)
{
    positionals_.emplace_back(name, help);
    return *this;
}

bool
ArgParser::parse(int argc, const char *const *argv)
{
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--help" || arg == "-h") {
            error_ = "";
            return false;
        }
        if (arg.rfind("--", 0) == 0) {
            std::string name = arg.substr(2);
            std::string value;
            bool hasValue = false;
            const auto eq = name.find('=');
            if (eq != std::string::npos) {
                value = name.substr(eq + 1);
                name = name.substr(0, eq);
                hasValue = true;
            }
            const auto it = options_.find(name);
            if (it == options_.end()) {
                error_ = "unknown flag --" + name;
                return false;
            }
            Option &opt = it->second;
            opt.present = true;
            if (opt.isSwitch) {
                if (hasValue) {
                    error_ = "switch --" + name + " takes no value";
                    return false;
                }
                continue;
            }
            if (!hasValue) {
                if (i + 1 >= argc) {
                    error_ = "flag --" + name + " needs a value";
                    return false;
                }
                value = argv[++i];
            }
            opt.value = value;
        } else {
            if (positionalValues_.size() >= positionals_.size()) {
                error_ = "unexpected argument '" + arg + "'";
                return false;
            }
            positionalValues_.push_back(arg);
        }
    }
    return true;
}

void
ArgParser::parseOrExit(int argc, const char *const *argv)
{
    if (parse(argc, argv))
        return;
    if (!error_.empty())
        std::cerr << "error: " << error_ << "\n\n";
    std::cerr << usage();
    std::exit(error_.empty() ? 0 : 2);
}

std::string
ArgParser::get(const std::string &name) const
{
    const auto it = options_.find(name);
    if (it == options_.end())
        fatal("ArgParser::get: undeclared option --", name);
    return it->second.value;
}

long
ArgParser::getInt(const std::string &name) const
{
    const std::string value = get(name);
    const auto parsed = parseLongStrict(value);
    if (!parsed)
        fatal("--", name, " expects an integer, got '", value, "'");
    return *parsed;
}

double
ArgParser::getDouble(const std::string &name) const
{
    const std::string value = get(name);
    const auto parsed = parseDoubleStrict(value);
    if (!parsed)
        fatal("--", name, " expects a finite number, got '", value,
              "'");
    return *parsed;
}

long
ArgParser::getIntAtLeast(const std::string &name, long floor) const
{
    const long value = getInt(name);
    if (value < floor)
        fatal("--", name, " must be >= ", floor, ", got ", value);
    return value;
}

bool
ArgParser::has(const std::string &name) const
{
    const auto it = options_.find(name);
    if (it == options_.end())
        fatal("ArgParser::has: undeclared flag --", name);
    return it->second.present;
}

std::string
ArgParser::positional(const std::string &name) const
{
    for (std::size_t i = 0; i < positionals_.size(); ++i) {
        if (positionals_[i].first == name) {
            if (i < positionalValues_.size())
                return positionalValues_[i];
            fatal("missing required argument <", name, ">");
        }
    }
    fatal("ArgParser::positional: undeclared argument ", name);
}

std::string
ArgParser::usage() const
{
    std::ostringstream os;
    os << program_ << " — " << summary_ << "\n\nusage: " << program_;
    for (const auto &[name, help] : positionals_)
        os << " <" << name << ">";
    os << " [flags]\n";
    if (!positionals_.empty()) {
        os << "\narguments:\n";
        for (const auto &[name, help] : positionals_)
            os << "  <" << name << ">  " << help << "\n";
    }
    os << "\nflags:\n";
    for (const std::string &name : optionOrder_) {
        const Option &opt = options_.at(name);
        os << "  --" << name;
        if (!opt.isSwitch) {
            os << " <value>";
            if (!opt.value.empty())
                os << " (default " << opt.value << ")";
        }
        os << "  " << opt.help << "\n";
    }
    os << "  --help  show this text\n";
    return os.str();
}

} // namespace litmus
