#include "common/rng.h"

#include <cmath>

#include "common/logging.h"

namespace litmus
{

namespace
{

/** SplitMix64 step used to expand the user seed into generator state. */
std::uint64_t
splitMix64(std::uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ull;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t v, int k)
{
    return (v << k) | (v >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t s = seed;
    for (auto &word : state_)
        word = splitMix64(s);
}

Rng::result_type
Rng::operator()()
{
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;

    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);

    return result;
}

double
Rng::uniform()
{
    // 53 high bits give a uniform double in [0, 1).
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double
Rng::uniform(double lo, double hi)
{
    if (lo > hi)
        panic("Rng::uniform: lo ", lo, " > hi ", hi);
    return lo + (hi - lo) * uniform();
}

std::uint64_t
Rng::below(std::uint64_t n)
{
    if (n == 0)
        panic("Rng::below: n must be positive");
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t limit = max() - max() % n;
    std::uint64_t v;
    do {
        v = (*this)();
    } while (v >= limit);
    return v % n;
}

std::int64_t
Rng::range(std::int64_t lo, std::int64_t hi)
{
    if (lo > hi)
        panic("Rng::range: lo ", lo, " > hi ", hi);
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(below(span));
}

double
Rng::gaussian()
{
    if (hasCachedGaussian_) {
        hasCachedGaussian_ = false;
        return cachedGaussian_;
    }
    double u1, u2;
    do {
        u1 = uniform();
    } while (u1 <= 0.0);
    u2 = uniform();
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 2.0 * M_PI * u2;
    cachedGaussian_ = r * std::sin(theta);
    hasCachedGaussian_ = true;
    return r * std::cos(theta);
}

double
Rng::gaussian(double mean, double stddev)
{
    return mean + stddev * gaussian();
}

double
Rng::jitter(double rel)
{
    if (rel <= 0.0)
        return 1.0;
    // Clamp to +/- 3 sigma so a single draw cannot distort a phase.
    double g = gaussian();
    if (g > 3.0)
        g = 3.0;
    else if (g < -3.0)
        g = -3.0;
    return std::exp(g * rel);
}

double
Rng::exponential(double mean)
{
    if (mean <= 0.0)
        panic("Rng::exponential: mean must be positive, got ", mean);
    double u;
    do {
        u = uniform();
    } while (u <= 0.0);
    return -mean * std::log(u);
}

bool
Rng::chance(double p)
{
    return uniform() < p;
}

Rng
Rng::fork()
{
    return Rng((*this)());
}

} // namespace litmus
