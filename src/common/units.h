/**
 * @file
 * Strong unit aliases shared across the Litmus libraries.
 *
 * The simulator accounts for progress in cycles and instructions and for
 * wall-clock time in seconds. We keep these as plain arithmetic types
 * (aliased for readability) because they flow through tight per-quantum
 * loops; the naming convention makes mixed-unit bugs visible in review.
 */

#ifndef LITMUS_COMMON_UNITS_H
#define LITMUS_COMMON_UNITS_H

#include <cstdint>

namespace litmus
{

/** Number of CPU clock cycles (frequency-dependent). */
using Cycles = double;

/** Number of retired instructions. */
using Instructions = double;

/** Wall-clock time in seconds. */
using Seconds = double;

/** Clock frequency in Hz. */
using Hertz = double;

/** Bytes of storage or memory. */
using Bytes = std::uint64_t;

/** Convenience literals for cache/memory sizes. */
constexpr Bytes operator""_KiB(unsigned long long v) { return v << 10; }
constexpr Bytes operator""_MiB(unsigned long long v) { return v << 20; }
constexpr Bytes operator""_GiB(unsigned long long v) { return v << 30; }

/** One million instructions, the natural unit for phase lengths. */
constexpr Instructions operator""_Minstr(unsigned long long v)
{
    return static_cast<Instructions>(v) * 1e6;
}

/** Microseconds / milliseconds expressed in seconds. */
constexpr Seconds operator""_us(unsigned long long v)
{
    return static_cast<Seconds>(v) * 1e-6;
}
constexpr Seconds operator""_ms(unsigned long long v)
{
    return static_cast<Seconds>(v) * 1e-3;
}

/** Gigahertz literal for core frequencies. */
constexpr Hertz operator""_GHz(long double v)
{
    return static_cast<Hertz>(v) * 1e9;
}
constexpr Hertz operator""_GHz(unsigned long long v)
{
    return static_cast<Hertz>(v) * 1e9;
}

} // namespace litmus

#endif // LITMUS_COMMON_UNITS_H
