#include "common/text_table.h"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "common/logging.h"

namespace litmus
{

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
    if (headers_.empty())
        fatal("TextTable requires at least one column");
}

void
TextTable::addRow(std::vector<std::string> cells)
{
    if (cells.size() != headers_.size())
        fatal("TextTable row has ", cells.size(), " cells, expected ",
              headers_.size());
    rows_.push_back(std::move(cells));
}

std::string
TextTable::num(double v, int precision)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << v;
    return os.str();
}

void
TextTable::print(std::ostream &os) const
{
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto &row : rows_)
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    auto emit = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            os << std::left << std::setw(static_cast<int>(widths[c]) + 2)
               << row[c];
        }
        os << '\n';
    };
    emit(headers_);
    std::string rule;
    for (std::size_t c = 0; c < headers_.size(); ++c)
        rule += std::string(widths[c], '-') + "  ";
    os << rule << '\n';
    for (const auto &row : rows_)
        emit(row);
}

void
TextTable::printCsv(std::ostream &os) const
{
    auto quote = [](const std::string &s) {
        if (s.find(',') == std::string::npos &&
            s.find('"') == std::string::npos) {
            return s;
        }
        std::string out = "\"";
        for (char ch : s) {
            if (ch == '"')
                out += '"';
            out += ch;
        }
        out += '"';
        return out;
    };
    auto emit = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            if (c)
                os << ',';
            os << quote(row[c]);
        }
        os << '\n';
    };
    emit(headers_);
    for (const auto &row : rows_)
        emit(row);
}

void
printBanner(std::ostream &os, const std::string &title)
{
    os << '\n' << std::string(72, '=') << '\n'
       << title << '\n'
       << std::string(72, '=') << '\n';
}

} // namespace litmus
