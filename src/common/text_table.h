/**
 * @file
 * Text rendering for experiment output: aligned console tables and CSV.
 *
 * Every bench binary reports its figure/table as rows of named columns;
 * TextTable renders them aligned for the console and can also emit CSV
 * so results can be re-plotted.
 */

#ifndef LITMUS_COMMON_TEXT_TABLE_H
#define LITMUS_COMMON_TEXT_TABLE_H

#include <cstddef>
#include <ostream>
#include <string>
#include <vector>

namespace litmus
{

/** Aligned console table with a header row. */
class TextTable
{
  public:
    /** Create with fixed column headers. */
    explicit TextTable(std::vector<std::string> headers);

    /** Add a preformatted row; must match the header count. */
    void addRow(std::vector<std::string> cells);

    /** Format a double with the given precision. */
    static std::string num(double v, int precision = 3);

    /** Render with space-aligned columns. */
    void print(std::ostream &os) const;

    /** Render as CSV (no alignment, comma separated, quoted as needed). */
    void printCsv(std::ostream &os) const;

    std::size_t rowCount() const { return rows_.size(); }

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

/** Print a section banner for bench output. */
void printBanner(std::ostream &os, const std::string &title);

} // namespace litmus

#endif // LITMUS_COMMON_TEXT_TABLE_H
