/**
 * @file
 * Key=value configuration reader for machine overrides.
 *
 * Providers tune the simulator's machine model per fleet; a flat
 * key=value format (one entry per line, '#' comments) keeps those
 * tweaks out of recompiles:
 *
 *     # my-fleet.conf
 *     cores = 48
 *     l3_capacity_mib = 60
 *     mem_service_rate = 2.4
 */

#ifndef LITMUS_COMMON_CONFIG_READER_H
#define LITMUS_COMMON_CONFIG_READER_H

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace litmus
{

/** Parsed key=value configuration. */
class ConfigReader
{
  public:
    ConfigReader() = default;

    /** Parse from text; fatal() on malformed lines. */
    static ConfigReader fromString(const std::string &text);

    /** Parse from a file; fatal() when unreadable. */
    static ConfigReader fromFile(const std::string &path);

    /** True when the key exists. */
    bool contains(const std::string &key) const;

    /** Raw string value; fatal() when missing. */
    std::string get(const std::string &key) const;

    /** Typed lookups with defaults. fatal() on malformed values. */
    std::string getString(const std::string &key,
                          const std::string &fallback) const;
    long getInt(const std::string &key, long fallback) const;
    double getDouble(const std::string &key, double fallback) const;
    bool getBool(const std::string &key, bool fallback) const;

    /** All keys, in file order (for validation sweeps). */
    const std::vector<std::string> &keys() const { return order_; }

    /** Set / override programmatically. */
    void set(const std::string &key, const std::string &value);

  private:
    std::map<std::string, std::string> values_;
    std::vector<std::string> order_;
};

} // namespace litmus

#endif // LITMUS_COMMON_CONFIG_READER_H
