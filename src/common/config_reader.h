/**
 * @file
 * Key=value configuration reader for machine overrides.
 *
 * Providers tune the simulator's machine model per fleet; a flat
 * key=value format (one entry per line, '#' comments) keeps those
 * tweaks out of recompiles:
 *
 *     # my-fleet.conf
 *     cores = 48
 *     l3_capacity_mib = 60
 *     mem_service_rate = 2.4
 */

#ifndef LITMUS_COMMON_CONFIG_READER_H
#define LITMUS_COMMON_CONFIG_READER_H

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace litmus
{

/** Parsed key=value configuration. */
class ConfigReader
{
  public:
    ConfigReader() = default;

    /**
     * Parse from text; fatal() on malformed lines. @p source names
     * the text's origin (a file path) in diagnostics; empty means
     * in-memory text.
     */
    static ConfigReader fromString(const std::string &text,
                                   const std::string &source = "");

    /** Parse from a file; fatal() when unreadable. The path becomes
     *  the reader's source(), so consumers can point diagnostics at
     *  file:line. */
    static ConfigReader fromFile(const std::string &path);

    /** True when the key exists. */
    bool contains(const std::string &key) const;

    /** Raw string value; fatal() when missing. */
    std::string get(const std::string &key) const;

    /** Typed lookups with defaults. fatal() on malformed values. */
    std::string getString(const std::string &key,
                          const std::string &fallback) const;
    long getInt(const std::string &key, long fallback) const;
    double getDouble(const std::string &key, double fallback) const;
    bool getBool(const std::string &key, bool fallback) const;

    /** All keys, in file order (for validation sweeps). */
    const std::vector<std::string> &keys() const { return order_; }

    /** Set / override programmatically. */
    void set(const std::string &key, const std::string &value);

    /** Where this config was parsed from ("" = in-memory). */
    const std::string &source() const { return source_; }

    /** Line the key was (last) defined on; 0 when the key is unknown
     *  or was set programmatically. */
    int lineOf(const std::string &key) const;

    /**
     * "path:line" locator for one key's definition — "" when neither
     * a source nor a line is known, so callers can prefix
     * diagnostics unconditionally.
     */
    std::string where(const std::string &key) const;

  private:
    std::map<std::string, std::string> values_;
    std::vector<std::string> order_;
    std::map<std::string, int> lines_;
    std::string source_;
};

} // namespace litmus

#endif // LITMUS_COMMON_CONFIG_READER_H
