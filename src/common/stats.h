/**
 * @file
 * Summary statistics used throughout calibration and the benches.
 *
 * The paper aggregates per-function slowdowns with the geometric mean
 * (gmean), reports weighted error rates, and normalizes series against
 * solo baselines; this header collects those primitives.
 */

#ifndef LITMUS_COMMON_STATS_H
#define LITMUS_COMMON_STATS_H

#include <cstddef>
#include <vector>

namespace litmus
{

/** Arithmetic mean; returns 0 for an empty series. */
double mean(const std::vector<double> &xs);

/**
 * Geometric mean of a strictly positive series.
 * Entries <= 0 are rejected with fatal() since slowdown ratios are
 * positive by construction.
 */
double gmean(const std::vector<double> &xs);

/** Population standard deviation; 0 for fewer than two samples. */
double stddev(const std::vector<double> &xs);

/** Minimum / maximum; fatal() on an empty series. */
double minOf(const std::vector<double> &xs);
double maxOf(const std::vector<double> &xs);

/**
 * Linear-interpolated percentile in [0, 100].
 * The series is copied and sorted internally.
 */
double percentile(std::vector<double> xs, double pct);

/** Mean of absolute values, used for aggregate error magnitudes. */
double meanAbs(const std::vector<double> &xs);

/** Geometric mean of absolute values (paper's "abs geomean" bar). */
double gmeanAbs(const std::vector<double> &xs);

/** Element-wise ratio a[i] / b[i]; both must have equal, nonzero size. */
std::vector<double> ratio(const std::vector<double> &a,
                          const std::vector<double> &b);

/**
 * Streaming accumulator for mean / variance / extrema over long runs
 * (Welford's algorithm), used by PMU-derived per-quantum series.
 */
class OnlineStats
{
  public:
    /** Add one observation. */
    void add(double x);

    /** Number of observations so far. */
    std::size_t count() const { return n_; }

    /** Running arithmetic mean (0 if empty). */
    double mean() const { return n_ ? mean_ : 0.0; }

    /** Population variance (0 for fewer than two samples). */
    double variance() const;

    /** Population standard deviation. */
    double stddev() const;

    double min() const { return min_; }
    double max() const { return max_; }

    /** Merge another accumulator into this one. */
    void merge(const OnlineStats &other);

    /** Reset to the empty state. */
    void reset();

  private:
    std::size_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

} // namespace litmus

#endif // LITMUS_COMMON_STATS_H
