/**
 * @file
 * Deterministic random number generation for reproducible experiments.
 *
 * Every stochastic decision in the simulator (workload selection,
 * per-invocation jitter, scheduler tie-breaking) draws from an Rng
 * seeded explicitly by the experiment. The generator is xoshiro256**,
 * seeded through SplitMix64 so that nearby seeds give independent
 * streams.
 */

#ifndef LITMUS_COMMON_RNG_H
#define LITMUS_COMMON_RNG_H

#include <array>
#include <cstdint>

namespace litmus
{

/**
 * xoshiro256** pseudo-random generator with convenience distributions.
 *
 * Satisfies UniformRandomBitGenerator so it can also feed <random>
 * distributions when needed.
 */
class Rng
{
  public:
    using result_type = std::uint64_t;

    /** Construct from a 64-bit seed; any value (including 0) is valid. */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

    static constexpr result_type min() { return 0; }
    static constexpr result_type max() { return ~0ull; }

    /** Next raw 64-bit output. */
    result_type operator()();

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform double in [lo, hi). Requires lo <= hi. */
    double uniform(double lo, double hi);

    /** Uniform integer in [0, n). Requires n > 0. */
    std::uint64_t below(std::uint64_t n);

    /** Uniform integer in [lo, hi] inclusive. Requires lo <= hi. */
    std::int64_t range(std::int64_t lo, std::int64_t hi);

    /** Standard normal via Box-Muller (cached second value). */
    double gaussian();

    /** Normal with the given mean and standard deviation. */
    double gaussian(double mean, double stddev);

    /**
     * Multiplicative jitter: a lognormal-ish factor close to 1.
     * @param rel relative spread, e.g. 0.02 for about +/-2%.
     */
    double jitter(double rel);

    /** Exponential variate with the given mean. Requires mean > 0. */
    double exponential(double mean);

    /** Bernoulli draw with probability p of true. */
    bool chance(double p);

    /** Derive an independent child stream (for per-task generators). */
    Rng fork();

  private:
    std::array<std::uint64_t, 4> state_;
    double cachedGaussian_ = 0.0;
    bool hasCachedGaussian_ = false;
};

} // namespace litmus

#endif // LITMUS_COMMON_RNG_H
