/**
 * @file
 * Small shared string helpers used across the CLI and scenario
 * layers.
 */

#ifndef LITMUS_COMMON_STRINGS_H
#define LITMUS_COMMON_STRINGS_H

#include <cmath>
#include <cstdlib>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

namespace litmus
{

/** Split on a delimiter, dropping empty pieces ("a,,b" -> {a, b}). */
inline std::vector<std::string>
splitNonEmpty(const std::string &text, char delim)
{
    std::vector<std::string> out;
    std::istringstream stream(text);
    std::string piece;
    while (std::getline(stream, piece, delim)) {
        if (!piece.empty())
            out.push_back(piece);
    }
    return out;
}

/** Strict base-10 integer parse: the whole string must be consumed
 *  (nullopt on trailing junk or an empty string). */
inline std::optional<long>
parseLongStrict(const std::string &value)
{
    if (value.empty())
        return std::nullopt;
    char *end = nullptr;
    // LITMUS-LINT-ALLOW(raw-parse): this IS the strict parser the rule routes to
    const long parsed = std::strtol(value.c_str(), &end, 10);
    if (!end || *end != '\0')
        return std::nullopt;
    return parsed;
}

/** Strict double parse: whole string consumed AND finite — "inf" and
 *  "nan" are configuration poison (an infinite duration generates
 *  arrivals forever, NaN defeats every ordering check). */
inline std::optional<double>
parseDoubleStrict(const std::string &value)
{
    if (value.empty())
        return std::nullopt;
    char *end = nullptr;
    // LITMUS-LINT-ALLOW(raw-parse): this IS the strict parser the rule routes to
    const double parsed = std::strtod(value.c_str(), &end);
    if (!end || *end != '\0' || !std::isfinite(parsed))
        return std::nullopt;
    return parsed;
}

} // namespace litmus

#endif // LITMUS_COMMON_STRINGS_H
