/**
 * @file
 * gem5-style statistics registry: named scalar counters, averages and
 * histograms that components register once and a harness dumps at the
 * end of a run.
 *
 * Components own their Stat objects; a StatsRegistry holds non-owning
 * references grouped by component name and renders an aligned report
 * or CSV. Used by the engine to export utilization/ latency summaries
 * and by experiment drivers for custom instrumentation.
 */

#ifndef LITMUS_COMMON_STATS_REGISTRY_H
#define LITMUS_COMMON_STATS_REGISTRY_H

#include <ostream>
#include <string>
#include <vector>

#include "common/stats.h"

namespace litmus
{

/** Base class of all registrable statistics. */
class Stat
{
  public:
    Stat(std::string name, std::string description);
    virtual ~Stat() = default;

    Stat(const Stat &) = delete;
    Stat &operator=(const Stat &) = delete;

    const std::string &name() const { return name_; }
    const std::string &description() const { return description_; }

    /** One-line formatted value. */
    virtual std::string render() const = 0;

    /** Reset to the initial state. */
    virtual void reset() = 0;

  private:
    std::string name_;
    std::string description_;
};

/** Monotonic scalar counter. */
class CounterStat : public Stat
{
  public:
    using Stat::Stat;

    void add(double v = 1.0) { value_ += v; }
    double value() const { return value_; }

    std::string render() const override;
    void reset() override { value_ = 0; }

  private:
    double value_ = 0;
};

/** Mean/min/max accumulator (wraps OnlineStats). */
class AverageStat : public Stat
{
  public:
    using Stat::Stat;

    void sample(double v) { acc_.add(v); }
    const OnlineStats &accumulator() const { return acc_; }

    std::string render() const override;
    void reset() override { acc_.reset(); }

  private:
    OnlineStats acc_;
};

/** Fixed-range linear histogram. */
class HistogramStat : public Stat
{
  public:
    /**
     * @param lo lower bound of the first bucket
     * @param hi upper bound of the last bucket
     * @param buckets bucket count (underflow/overflow tracked apart)
     */
    HistogramStat(std::string name, std::string description, double lo,
                  double hi, std::size_t buckets);

    void sample(double v);

    std::size_t bucketCount() const { return counts_.size(); }
    std::uint64_t bucket(std::size_t i) const { return counts_.at(i); }
    std::uint64_t underflow() const { return underflow_; }
    std::uint64_t overflow() const { return overflow_; }
    std::uint64_t total() const;

    std::string render() const override;
    void reset() override;

  private:
    double lo_;
    double hi_;
    std::vector<std::uint64_t> counts_;
    std::uint64_t underflow_ = 0;
    std::uint64_t overflow_ = 0;
};

/**
 * Grouped collection of non-owning stat references.
 */
class StatsRegistry
{
  public:
    /** Register a stat under a component group. */
    void add(const std::string &group, Stat &stat);

    /** Render all groups as an aligned report. */
    void dump(std::ostream &os) const;

    /** Render as CSV (group,name,value,description). */
    void dumpCsv(std::ostream &os) const;

    /** Reset every registered stat. */
    void resetAll();

    std::size_t size() const { return entries_.size(); }

  private:
    struct Entry
    {
        std::string group;
        Stat *stat;
    };

    std::vector<Entry> entries_;
};

} // namespace litmus

#endif // LITMUS_COMMON_STATS_REGISTRY_H
