/**
 * @file
 * Interpolating lookup tables for the congestion / performance tables.
 *
 * The provider-side tables of Figure 5 are indexed by discrete stress
 * levels but queried at continuous congestion coordinates, so the core
 * container is a monotone-keyed table with linear interpolation and
 * clamped extrapolation.
 */

#ifndef LITMUS_COMMON_TABLE_H
#define LITMUS_COMMON_TABLE_H

#include <cstddef>
#include <string>
#include <vector>

namespace litmus
{

/**
 * A one-dimensional table of (key, value) pairs with strictly
 * increasing keys, supporting linear interpolation between entries and
 * clamping outside the key range.
 */
class InterpTable
{
  public:
    InterpTable() = default;

    /** Append an entry; keys must arrive in strictly increasing order. */
    void add(double key, double value);

    /** Number of entries. */
    std::size_t size() const { return keys_.size(); }
    bool empty() const { return keys_.empty(); }

    /** Key range (fatal on an empty table). */
    double minKey() const;
    double maxKey() const;

    /** Interpolated value at key (clamped outside the range). */
    double at(double key) const;

    /**
     * Inverse lookup for tables whose values are monotone increasing:
     * the key whose value equals v (clamped to the value range).
     */
    double keyFor(double v) const;

    /** Direct access to the stored series (for fits and printing). */
    const std::vector<double> &keys() const { return keys_; }
    const std::vector<double> &values() const { return values_; }

  private:
    std::vector<double> keys_;
    std::vector<double> values_;
};

} // namespace litmus

#endif // LITMUS_COMMON_TABLE_H
