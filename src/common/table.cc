#include "common/table.h"

#include <algorithm>

#include "common/logging.h"
#include "common/regression.h"

namespace litmus
{

void
InterpTable::add(double key, double value)
{
    if (!keys_.empty() && key <= keys_.back())
        fatal("InterpTable: keys must be strictly increasing (", key,
              " after ", keys_.back(), ")");
    keys_.push_back(key);
    values_.push_back(value);
}

double
InterpTable::minKey() const
{
    if (empty())
        fatal("InterpTable::minKey on empty table");
    return keys_.front();
}

double
InterpTable::maxKey() const
{
    if (empty())
        fatal("InterpTable::maxKey on empty table");
    return keys_.back();
}

double
InterpTable::at(double key) const
{
    if (empty())
        fatal("InterpTable::at on empty table");
    if (key <= keys_.front())
        return values_.front();
    if (key >= keys_.back())
        return values_.back();
    const auto it = std::upper_bound(keys_.begin(), keys_.end(), key);
    const auto hi = static_cast<std::size_t>(it - keys_.begin());
    const std::size_t lo = hi - 1;
    const double t = (key - keys_[lo]) / (keys_[hi] - keys_[lo]);
    return lerp(values_[lo], values_[hi], t);
}

double
InterpTable::keyFor(double v) const
{
    if (empty())
        fatal("InterpTable::keyFor on empty table");
    if (values_.size() == 1)
        return keys_.front();
    // Verify monotonicity lazily: scan for the first bracketing segment.
    if (v <= values_.front())
        return keys_.front();
    if (v >= values_.back())
        return keys_.back();
    for (std::size_t i = 1; i < values_.size(); ++i) {
        const double a = values_[i - 1];
        const double b = values_[i];
        if ((v >= a && v <= b) || (v <= a && v >= b)) {
            if (b == a)
                return keys_[i - 1];
            const double t = (v - a) / (b - a);
            return lerp(keys_[i - 1], keys_[i], t);
        }
    }
    // Non-monotone values and v outside every segment: clamp to the end.
    return keys_.back();
}

} // namespace litmus
