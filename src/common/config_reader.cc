#include "common/config_reader.h"

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "common/logging.h"
#include "sim/machine_config.h"

namespace litmus
{

namespace
{

std::string
trim(const std::string &s)
{
    const auto begin = s.find_first_not_of(" \t\r");
    if (begin == std::string::npos)
        return "";
    const auto end = s.find_last_not_of(" \t\r");
    return s.substr(begin, end - begin + 1);
}

} // namespace

ConfigReader
ConfigReader::fromString(const std::string &text)
{
    ConfigReader reader;
    std::istringstream in(text);
    std::string line;
    int lineNo = 0;
    while (std::getline(in, line)) {
        ++lineNo;
        const auto comment = line.find('#');
        if (comment != std::string::npos)
            line = line.substr(0, comment);
        line = trim(line);
        if (line.empty())
            continue;
        const auto eq = line.find('=');
        if (eq == std::string::npos)
            fatal("ConfigReader: line ", lineNo, " is not key=value: '",
                  line, "'");
        const std::string key = trim(line.substr(0, eq));
        const std::string value = trim(line.substr(eq + 1));
        if (key.empty())
            fatal("ConfigReader: empty key on line ", lineNo);
        reader.set(key, value);
    }
    return reader;
}

ConfigReader
ConfigReader::fromFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        fatal("ConfigReader: cannot open '", path, "'");
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return fromString(buffer.str());
}

bool
ConfigReader::contains(const std::string &key) const
{
    return values_.contains(key);
}

std::string
ConfigReader::get(const std::string &key) const
{
    const auto it = values_.find(key);
    if (it == values_.end())
        fatal("ConfigReader: missing key '", key, "'");
    return it->second;
}

std::string
ConfigReader::getString(const std::string &key,
                        const std::string &fallback) const
{
    return contains(key) ? get(key) : fallback;
}

long
ConfigReader::getInt(const std::string &key, long fallback) const
{
    if (!contains(key))
        return fallback;
    const std::string value = get(key);
    char *end = nullptr;
    const long parsed = std::strtol(value.c_str(), &end, 10);
    if (!end || *end != '\0' || value.empty())
        fatal("ConfigReader: '", key, "' expects an integer, got '",
              value, "'");
    return parsed;
}

double
ConfigReader::getDouble(const std::string &key, double fallback) const
{
    if (!contains(key))
        return fallback;
    const std::string value = get(key);
    char *end = nullptr;
    const double parsed = std::strtod(value.c_str(), &end);
    if (!end || *end != '\0' || value.empty())
        fatal("ConfigReader: '", key, "' expects a number, got '", value,
              "'");
    return parsed;
}

bool
ConfigReader::getBool(const std::string &key, bool fallback) const
{
    if (!contains(key))
        return fallback;
    std::string value = get(key);
    std::transform(value.begin(), value.end(), value.begin(),
                   [](unsigned char c) { return std::tolower(c); });
    if (value == "true" || value == "1" || value == "yes" ||
        value == "on") {
        return true;
    }
    if (value == "false" || value == "0" || value == "no" ||
        value == "off") {
        return false;
    }
    fatal("ConfigReader: '", key, "' expects a boolean, got '", value,
          "'");
}

void
ConfigReader::set(const std::string &key, const std::string &value)
{
    if (!values_.contains(key))
        order_.push_back(key);
    values_[key] = value;
}

void
applyMachineOverrides(sim::MachineConfig &machine,
                      const ConfigReader &config)
{
    for (const std::string &key : config.keys()) {
        if (key == "name") {
            machine.name = config.get(key);
        } else if (key == "cores") {
            machine.cores =
                static_cast<unsigned>(config.getInt(key, 0));
        } else if (key == "smt_ways") {
            machine.smtWays =
                static_cast<unsigned>(config.getInt(key, 1));
        } else if (key == "base_ghz") {
            machine.baseFrequency = config.getDouble(key, 0) * 1e9;
        } else if (key == "turbo_ghz") {
            machine.turboFrequency = config.getDouble(key, 0) * 1e9;
        } else if (key == "l3_capacity_mib") {
            machine.l3Capacity = static_cast<Bytes>(
                config.getDouble(key, 0) * 1024.0 * 1024.0);
        } else if (key == "l3_hit_latency_ns") {
            machine.l3HitLatencyNs = config.getDouble(key, 0);
        } else if (key == "mem_latency_ns") {
            machine.memLatencyNs = config.getDouble(key, 0);
        } else if (key == "l3_service_rate") {
            machine.l3ServiceRate = config.getDouble(key, 0);
        } else if (key == "mem_service_rate") {
            machine.memServiceRate = config.getDouble(key, 0);
        } else if (key == "l3_queue_max") {
            machine.l3QueueMax = config.getDouble(key, 0);
        } else if (key == "mem_queue_max") {
            machine.memQueueMax = config.getDouble(key, 0);
        } else if (key == "queue_gamma") {
            machine.queueGamma = config.getDouble(key, 0);
        } else if (key == "capacity_miss_exponent") {
            machine.capacityMissExponent = config.getDouble(key, 0);
        } else if (key == "residency_factor") {
            machine.residencyFactor = config.getDouble(key, 0);
        } else if (key == "coupling_l3") {
            machine.privateCouplingL3 = config.getDouble(key, 0);
        } else if (key == "coupling_mem") {
            machine.privateCouplingMem = config.getDouble(key, 0);
        } else if (key == "coupling_saturation_mpki") {
            machine.couplingSaturationMpki = config.getDouble(key, 0);
        } else if (key == "coupling_max") {
            machine.privateCouplingMax = config.getDouble(key, 0);
        } else if (key == "smt_cpi_multiplier") {
            machine.smtCpiMultiplier = config.getDouble(key, 0);
        } else if (key == "time_slice_ms") {
            machine.timeSlice = config.getDouble(key, 0) * 1e-3;
        } else if (key == "context_switch_cycles") {
            machine.contextSwitchCycles = config.getDouble(key, 0);
        } else if (key == "warmth_max_penalty") {
            machine.warmthMaxPenalty = config.getDouble(key, 0);
        } else if (key == "warmth_rate") {
            machine.warmthRate = config.getDouble(key, 0);
        } else if (key == "memory_capacity_gib") {
            machine.memoryCapacity = static_cast<Bytes>(
                config.getDouble(key, 0) * 1024.0 * 1024.0 * 1024.0);
        } else {
            fatal("applyMachineOverrides: unknown key '", key, "'");
        }
    }
    machine.validate();
}

} // namespace litmus
