#include "common/config_reader.h"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "common/logging.h"
#include "common/strings.h"

namespace litmus
{

namespace
{

std::string
trim(const std::string &s)
{
    const auto begin = s.find_first_not_of(" \t\r");
    if (begin == std::string::npos)
        return "";
    const auto end = s.find_last_not_of(" \t\r");
    return s.substr(begin, end - begin + 1);
}

} // namespace

ConfigReader
ConfigReader::fromString(const std::string &text,
                         const std::string &source)
{
    ConfigReader reader;
    reader.source_ = source;
    const std::string label = source.empty() ? "ConfigReader" : source;
    std::istringstream in(text);
    std::string line;
    int lineNo = 0;
    while (std::getline(in, line)) {
        ++lineNo;
        const auto comment = line.find('#');
        if (comment != std::string::npos)
            line = line.substr(0, comment);
        line = trim(line);
        if (line.empty())
            continue;
        const auto eq = line.find('=');
        if (eq == std::string::npos)
            fatal(label, ": line ", lineNo, " is not key=value: '",
                  line, "'");
        const std::string key = trim(line.substr(0, eq));
        const std::string value = trim(line.substr(eq + 1));
        if (key.empty())
            fatal(label, ": empty key on line ", lineNo);
        reader.set(key, value);
        reader.lines_[key] = lineNo;
    }
    return reader;
}

ConfigReader
ConfigReader::fromFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        fatal("ConfigReader: cannot open '", path, "'");
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return fromString(buffer.str(), path);
}

bool
ConfigReader::contains(const std::string &key) const
{
    return values_.contains(key);
}

std::string
ConfigReader::get(const std::string &key) const
{
    const auto it = values_.find(key);
    if (it == values_.end())
        fatal("ConfigReader: missing key '", key, "'");
    return it->second;
}

std::string
ConfigReader::getString(const std::string &key,
                        const std::string &fallback) const
{
    return contains(key) ? get(key) : fallback;
}

long
ConfigReader::getInt(const std::string &key, long fallback) const
{
    if (!contains(key))
        return fallback;
    const std::string value = get(key);
    const std::optional<long> parsed = parseLongStrict(value);
    if (!parsed)
        fatal("ConfigReader: '", key, "' expects an integer, got '",
              value, "'");
    return *parsed;
}

double
ConfigReader::getDouble(const std::string &key, double fallback) const
{
    if (!contains(key))
        return fallback;
    const std::string value = get(key);
    // Strict parse: whole string consumed AND finite — an "inf"
    // capacity or "nan" rate is configuration poison.
    const std::optional<double> parsed = parseDoubleStrict(value);
    if (!parsed)
        fatal("ConfigReader: '", key, "' expects a finite number, got '",
              value, "'");
    return *parsed;
}

bool
ConfigReader::getBool(const std::string &key, bool fallback) const
{
    if (!contains(key))
        return fallback;
    std::string value = get(key);
    std::transform(value.begin(), value.end(), value.begin(),
                   [](unsigned char c) { return std::tolower(c); });
    if (value == "true" || value == "1" || value == "yes" ||
        value == "on") {
        return true;
    }
    if (value == "false" || value == "0" || value == "no" ||
        value == "off") {
        return false;
    }
    fatal("ConfigReader: '", key, "' expects a boolean, got '", value,
          "'");
}

void
ConfigReader::set(const std::string &key, const std::string &value)
{
    if (!values_.contains(key))
        order_.push_back(key);
    values_[key] = value;
    // A programmatic override has no file line to point at.
    lines_.erase(key);
}

int
ConfigReader::lineOf(const std::string &key) const
{
    const auto it = lines_.find(key);
    return it == lines_.end() ? 0 : it->second;
}

std::string
ConfigReader::where(const std::string &key) const
{
    const int line = lineOf(key);
    if (source_.empty() && line == 0)
        return "";
    std::string out = source_.empty() ? "<config>" : source_;
    if (line > 0) {
        out += ':';
        out += std::to_string(line);
    }
    return out;
}

} // namespace litmus
