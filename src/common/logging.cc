#include "common/logging.h"

#include <cstdlib>
#include <iostream>

namespace litmus
{

namespace
{

LogLevel threshold = LogLevel::Inform;

} // namespace

void
setLogThreshold(LogLevel level)
{
    threshold = level;
}

LogLevel
logThreshold()
{
    return threshold;
}

namespace detail
{

void
emitFatal(const std::string &msg)
{
    std::cerr << "fatal: " << msg << std::endl;
    std::exit(1);
}

void
emitPanic(const std::string &msg)
{
    std::cerr << "panic: " << msg << std::endl;
    std::abort();
}

void
emitWarn(const std::string &msg)
{
    if (threshold <= LogLevel::Warn)
        std::cerr << "warn: " << msg << std::endl;
}

void
emitInform(const std::string &msg)
{
    if (threshold <= LogLevel::Inform)
        std::cout << "info: " << msg << std::endl;
}

} // namespace detail

} // namespace litmus
