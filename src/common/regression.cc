#include "common/regression.h"

#include <cmath>

#include "common/logging.h"

namespace litmus
{

namespace
{

struct OlsResult
{
    double slope;
    double intercept;
    double r2;
};

/** Shared OLS core for the linear and log fits. */
OlsResult
ols(const std::vector<double> &xs, const std::vector<double> &ys)
{
    if (xs.size() != ys.size())
        fatal("regression: size mismatch (", xs.size(), " vs ",
              ys.size(), ")");
    if (xs.size() < 2)
        fatal("regression: need at least two samples, got ", xs.size());

    const auto n = static_cast<double>(xs.size());
    double sx = 0.0, sy = 0.0, sxx = 0.0, sxy = 0.0;
    for (std::size_t i = 0; i < xs.size(); ++i) {
        sx += xs[i];
        sy += ys[i];
        sxx += xs[i] * xs[i];
        sxy += xs[i] * ys[i];
    }
    const double denom = n * sxx - sx * sx;
    if (std::fabs(denom) < 1e-12)
        fatal("regression: degenerate x values (all equal)");

    OlsResult r{};
    r.slope = (n * sxy - sx * sy) / denom;
    r.intercept = (sy - r.slope * sx) / n;

    const double my = sy / n;
    double ssRes = 0.0, ssTot = 0.0;
    for (std::size_t i = 0; i < xs.size(); ++i) {
        const double pred = r.slope * xs[i] + r.intercept;
        ssRes += (ys[i] - pred) * (ys[i] - pred);
        ssTot += (ys[i] - my) * (ys[i] - my);
    }
    r.r2 = ssTot > 0.0 ? 1.0 - ssRes / ssTot : 1.0;
    return r;
}

} // namespace

LinearFit
LinearFit::fit(const std::vector<double> &xs, const std::vector<double> &ys)
{
    const OlsResult r = ols(xs, ys);
    LinearFit f(r.slope, r.intercept);
    f.r2_ = r.r2;
    f.samples_ = xs.size();
    return f;
}

LinearFit::LinearFit(double slope, double intercept)
    : slope_(slope), intercept_(intercept)
{
}

double
LinearFit::predict(double x) const
{
    return slope_ * x + intercept_;
}

double
LinearFit::invert(double y) const
{
    if (std::fabs(slope_) < 1e-12)
        fatal("LinearFit::invert on a flat fit");
    return (y - intercept_) / slope_;
}

LogFit
LogFit::fit(const std::vector<double> &xs, const std::vector<double> &ys)
{
    std::vector<double> lnx;
    lnx.reserve(xs.size());
    for (double x : xs) {
        if (x <= 0.0)
            fatal("LogFit requires positive x, got ", x);
        lnx.push_back(std::log(x));
    }
    const OlsResult r = ols(lnx, ys);
    LogFit f(r.intercept, r.slope);
    f.r2_ = r.r2;
    return f;
}

LogFit::LogFit(double a, double b) : a_(a), b_(b) {}

double
LogFit::predict(double x) const
{
    if (x <= 0.0)
        fatal("LogFit::predict requires positive x, got ", x);
    return a_ + b_ * std::log(x);
}

double
LogFit::invert(double y) const
{
    if (std::fabs(b_) < 1e-12)
        fatal("LogFit::invert on a flat fit");
    return std::exp((y - a_) / b_);
}

double
logBlendWeight(double v, double lo, double hi)
{
    if (lo <= 0.0 || hi <= 0.0 || v <= 0.0)
        fatal("logBlendWeight requires positive inputs (v=", v, " lo=",
              lo, " hi=", hi, ")");
    if (hi < lo)
        std::swap(lo, hi);
    if (v <= lo)
        return 0.0;
    if (v >= hi)
        return 1.0;
    const double span = std::log(hi) - std::log(lo);
    if (span < 1e-12)
        return 0.5;
    return (std::log(v) - std::log(lo)) / span;
}

double
lerp(double a, double b, double t)
{
    return a + t * (b - a);
}

} // namespace litmus
