#include "common/stats_registry.h"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "common/logging.h"

namespace litmus
{

Stat::Stat(std::string name, std::string description)
    : name_(std::move(name)), description_(std::move(description))
{
    if (name_.empty())
        fatal("Stat: empty name");
}

std::string
CounterStat::render() const
{
    std::ostringstream os;
    os << value_;
    return os.str();
}

std::string
AverageStat::render() const
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(4) << acc_.mean() << " (min "
       << acc_.min() << ", max " << acc_.max() << ", n=" << acc_.count()
       << ")";
    return os.str();
}

HistogramStat::HistogramStat(std::string name, std::string description,
                             double lo, double hi, std::size_t buckets)
    : Stat(std::move(name), std::move(description)), lo_(lo), hi_(hi)
{
    if (hi <= lo)
        fatal("HistogramStat ", this->name(), ": hi must exceed lo");
    if (buckets == 0)
        fatal("HistogramStat ", this->name(), ": need buckets");
    counts_.resize(buckets, 0);
}

void
HistogramStat::sample(double v)
{
    if (v < lo_) {
        ++underflow_;
        return;
    }
    if (v >= hi_) {
        ++overflow_;
        return;
    }
    const double t = (v - lo_) / (hi_ - lo_);
    auto idx = static_cast<std::size_t>(
        t * static_cast<double>(counts_.size()));
    idx = std::min(idx, counts_.size() - 1);
    ++counts_[idx];
}

std::uint64_t
HistogramStat::total() const
{
    std::uint64_t sum = underflow_ + overflow_;
    for (std::uint64_t c : counts_)
        sum += c;
    return sum;
}

std::string
HistogramStat::render() const
{
    std::ostringstream os;
    os << "n=" << total() << " [";
    for (std::size_t i = 0; i < counts_.size(); ++i) {
        if (i)
            os << ' ';
        os << counts_[i];
    }
    os << "] under=" << underflow_ << " over=" << overflow_;
    return os.str();
}

void
HistogramStat::reset()
{
    std::fill(counts_.begin(), counts_.end(), 0);
    underflow_ = overflow_ = 0;
}

void
StatsRegistry::add(const std::string &group, Stat &stat)
{
    for (const Entry &entry : entries_) {
        if (entry.group == group &&
            entry.stat->name() == stat.name()) {
            fatal("StatsRegistry: duplicate stat ", group, ".",
                  stat.name());
        }
    }
    entries_.push_back({group, &stat});
}

void
StatsRegistry::dump(std::ostream &os) const
{
    std::string lastGroup;
    for (const Entry &entry : entries_) {
        if (entry.group != lastGroup) {
            os << entry.group << ":\n";
            lastGroup = entry.group;
        }
        os << "  " << std::left << std::setw(28) << entry.stat->name()
           << entry.stat->render() << "   # "
           << entry.stat->description() << "\n";
    }
}

void
StatsRegistry::dumpCsv(std::ostream &os) const
{
    os << "group,name,value,description\n";
    for (const Entry &entry : entries_) {
        os << entry.group << ',' << entry.stat->name() << ",\""
           << entry.stat->render() << "\",\""
           << entry.stat->description() << "\"\n";
    }
}

void
StatsRegistry::resetAll()
{
    for (const Entry &entry : entries_)
        entry.stat->reset();
}

} // namespace litmus
